#include "obs/emit.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

namespace rtr::obs {

namespace {

const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value_array(std::string& out, const std::vector<Value>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

void append_series(std::string& out, const Sample& s) {
  append_escaped(out, s.name);
  out += ":{\"kind\":\"";
  out += to_string(s.kind);
  out += '"';
  if (s.kind == Kind::kCounter) {
    out += ",\"value\":" + std::to_string(s.count);
  } else {
    out += ",\"count\":" + std::to_string(s.count);
    out += ",\"sum\":" + std::to_string(s.sum);
    out += ",\"min\":" + std::to_string(s.min);
    out += ",\"max\":" + std::to_string(s.max);
  }
  if (s.kind == Kind::kHistogram) {
    out += ",\"bounds\":";
    append_value_array(out, s.bucket_bounds);
    out += ",\"counts\":";
    append_value_array(out, s.bucket_counts);
  }
  out += '}';
}

void append_series_map(std::string& out, const Snapshot& snapshot,
                       Stability want) {
  out += '{';
  bool first = true;
  for (const Sample& s : snapshot) {  // snapshot is sorted by name
    if (s.stability != want) continue;
    if (!first) out += ',';
    first = false;
    append_series(out, s);
  }
  out += '}';
}

}  // namespace

const char* git_describe() {
#ifdef RTR_GIT_DESCRIBE
  return RTR_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

Value process_uptime_ms() {
  const auto d = std::chrono::steady_clock::now() - g_process_start;
  return static_cast<Value>(
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count());
}

Value peak_rss_kb() {
  // VmHWM is the kernel's high-water mark of the resident set; the
  // value is already in KiB.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<Value>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<Value>(ru.ru_maxrss);  // Linux: KiB
  }
  return 0;
}

std::string to_json(const Snapshot& snapshot, const RunInfo& run,
                    const EmitOptions& opts) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"rtr.metrics.v1\",\"schema_version\":1,";

  out += "\"run\":{\"bench\":";
  append_escaped(out, run.bench);
  out += ",\"git_describe\":";
  append_escaped(out, git_describe());
  out += ",\"config\":{";
  for (std::size_t i = 0; i < run.config.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, run.config[i].first);
    out += ':';
    append_escaped(out, run.config[i].second);
  }
  out += "}},";

  out += "\"metrics\":";
  append_series_map(out, snapshot, Stability::kStable);

  if (opts.include_volatile) {
    out += ",\"timing\":{\"threads\":" + std::to_string(opts.threads);
    out += ",\"wall_clock_ms\":" + std::to_string(opts.wall_clock_ms);
    out += ",\"max_rss_kb\":" + std::to_string(opts.max_rss_kb);
    out += ",\"series\":";
    append_series_map(out, snapshot, Stability::kVolatile);
    out += '}';
  }
  out += '}';
  return out;
}

bool write_metrics_file(const std::string& path, const Snapshot& snapshot,
                        const RunInfo& run, const EmitOptions& opts) {
  // Write-to-temp + atomic rename: a reader (or a crash) mid-flush can
  // only ever observe the previous complete document, never a torn one
  // -- the same durability posture as the ledger's append framing.
  const std::string tmp = path + ".tmp";
  std::ofstream f(tmp, std::ios::out | std::ios::trunc);
  if (!f) {
    std::cerr << "obs: cannot open metrics file " << tmp << '\n';
    return false;
  }
  f << to_json(snapshot, run, opts) << '\n';
  f.close();
  if (!f) {
    std::cerr << "obs: failed writing metrics file " << tmp << '\n';
    (void)std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::cerr << "obs: cannot rename " << tmp << " to " << path << '\n';
    (void)std::remove(tmp.c_str());
    return false;
  }
  return true;
}

Emitter& Emitter::global() {
  // lint:allow(mutable-static) — the process-wide emitter, leaked like
  // Registry::global() so the atexit flush outlives static destructors
  static Emitter* instance = new Emitter();  // NOLINT
  return *instance;
}

void Emitter::configure(std::string path, RunInfo run, EmitOptions opts) {
  const std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(path);
  run_ = std::move(run);
  opts_ = opts;
}

bool Emitter::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return false;
  EmitOptions opts = opts_;
  opts.wall_clock_ms = process_uptime_ms();
  opts.max_rss_kb = peak_rss_kb();
  if (!write_metrics_file(path_, Registry::global().snapshot(), run_,
                          opts)) {
    return false;
  }
  ++flushes_;
  return true;
}

bool Emitter::register_atexit() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (atexit_registered_) return false;
    atexit_registered_ = true;
  }
  std::atexit([] { Emitter::global().flush(); });
  return true;
}

bool Emitter::configured() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return !path_.empty();
}

std::size_t Emitter::flushes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flushes_;
}

}  // namespace rtr::obs
