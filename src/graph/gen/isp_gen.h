// Rocketfuel-surrogate ISP topology generation.
//
// The paper's evaluation (Section IV-A, Table II) uses eight ISP maps
// from the Rocketfuel project, with nodes then placed *uniformly at
// random* in a 2000x2000 area.  The Rocketfuel data files are not
// available offline, so we synthesise surrogate topologies with the
// exact node and link counts of Table II: a preferential, distance-
// biased spanning tree (hub-and-spoke structure with the tree branches
// the paper calls out for AS7018) plus distance-biased extra links up to
// the exact link count.  Because the paper itself randomises the
// embedding, matching size/density/branchiness is what preserves the
// evaluated behaviour.  See DESIGN.md, "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace rtr::graph {

/// Parameters of one surrogate ISP topology.
struct IspSpec {
  std::string name;        ///< e.g. "AS209"
  std::size_t nodes = 0;   ///< Table II node count
  std::size_t links = 0;   ///< Table II link count
  std::uint64_t seed = 0;  ///< deterministic generation seed
  bool core = true;        ///< in Table II (false: AS2914/AS3356, which
                           ///< appear only in Fig. 11-13 legends)
};

/// Tuning knobs of the generator.
///
/// The defaults mirror the paper's procedure: the adjacency structure
/// of a Rocketfuel map is independent of where the paper then drops the
/// nodes ("we randomly place nodes in a 2000x2000 area"), so the
/// surrogate's structure must not be correlated with the embedding
/// either -- locality biases default to off (0 = disabled).  A mild
/// hub bias reproduces ISP degree skew without the fragile pure-star
/// hubs that a strong preferential attachment would create.
struct IspGenConfig {
  double extent = 2000.0;        ///< side of the square embedding area
  double tree_locality = 0.0;    ///< exp(-d/tree_locality) attachment
                                 ///< bias; <= 0 disables (default)
  double extra_locality = 0.0;   ///< same for extra links
  double hub_bias = 0.5;         ///< (degree+1)^hub_bias weight
};

/// Generates a connected surrogate with exactly spec.nodes nodes and
/// spec.links links.  Deterministic in spec.seed.
Graph make_isp_topology(const IspSpec& spec, const IspGenConfig& cfg = {});

/// The ten topologies used across the paper's figures: the eight of
/// Table II plus AS2914 and AS3356 (surrogate sizes; see DESIGN.md).
const std::vector<IspSpec>& rocketfuel_specs();

/// The subset listed in Table II (core == true).
std::vector<IspSpec> table2_specs();

/// Looks up a spec by name; throws std::out_of_range when unknown.
const IspSpec& spec_by_name(const std::string& name);

}  // namespace rtr::graph
