#include "graph/gen/isp_gen.h"

#include <cmath>
#include <stdexcept>

namespace rtr::graph {

namespace {

/// Samples an index in [0, weights.size()) proportionally to weights.
std::size_t weighted_pick(const std::vector<double>& weights, Rng& rng) {
  double total = 0.0;
  for (double w : weights) total += w;
  RTR_EXPECT(total > 0.0);
  double r = rng.uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

Graph make_isp_topology(const IspSpec& spec, const IspGenConfig& cfg) {
  RTR_EXPECT_MSG(spec.nodes >= 2, "need at least two routers");
  RTR_EXPECT_MSG(spec.links >= spec.nodes - 1,
                 "link count below spanning-tree minimum");
  RTR_EXPECT_MSG(spec.links <= spec.nodes * (spec.nodes - 1) / 2,
                 "link count above simple-graph maximum");

  Rng rng(spec.seed);
  GraphBuilder g;
  for (std::size_t i = 0; i < spec.nodes; ++i) {
    g.add_node({rng.uniform_real(0.0, cfg.extent),
                rng.uniform_real(0.0, cfg.extent)});
  }

  // Spanning tree: each node joins an earlier node chosen with weight
  // (degree + 1)^hub_bias, optionally damped by distance.  The mild hub
  // bias yields ISP-like degree skew, and in sparse specs (AS7018) the
  // long tree branches the paper calls out in Section IV-B.
  for (NodeId i = 1; i < g.node_count(); ++i) {
    std::vector<double> w(i);
    for (NodeId j = 0; j < i; ++j) {
      w[j] = std::pow(static_cast<double>(g.degree(j)) + 1.0, cfg.hub_bias);
      if (cfg.tree_locality > 0.0) {
        const double d = geom::distance(g.position(i), g.position(j));
        w[j] *= std::exp(-d / cfg.tree_locality);
      }
    }
    g.add_link(i, static_cast<NodeId>(weighted_pick(w, rng)));
  }

  // Extra links between uniform random pairs (optionally distance
  // biased), up to the exact Table II count.
  const double max_extra_tries = 1e7;
  double tries = 0.0;
  while (g.num_links() < spec.links) {
    RTR_EXPECT_MSG(++tries < max_extra_tries,
                   "extra-link sampling failed to converge");
    const NodeId u = static_cast<NodeId>(rng.index(spec.nodes));
    const NodeId v = static_cast<NodeId>(rng.index(spec.nodes));
    if (u == v || g.find_link(u, v) != kNoLink) continue;
    if (cfg.extra_locality > 0.0) {
      const double d = geom::distance(g.position(u), g.position(v));
      if (!rng.bernoulli(std::exp(-d / cfg.extra_locality))) continue;
    }
    g.add_link(u, v);
  }
  return g.build();
}

const std::vector<IspSpec>& rocketfuel_specs() {
  // Table II of the paper; seeds fixed so every bench/test sees the same
  // surrogate map for a given AS.  AS2914/AS3356 sizes are surrogate
  // estimates (the paper plots them but does not tabulate them).
  static const std::vector<IspSpec> specs = {
      {"AS209", 58, 108, 0x209001, true},
      {"AS701", 83, 219, 0x701001, true},
      {"AS1239", 52, 84, 0x1239001, true},
      {"AS3320", 70, 355, 0x3320001, true},
      {"AS3549", 61, 486, 0x3549001, true},
      {"AS3561", 92, 329, 0x3561001, true},
      {"AS4323", 51, 161, 0x4323001, true},
      {"AS7018", 115, 148, 0x7018001, true},
      {"AS2914", 66, 182, 0x2914001, false},
      {"AS3356", 63, 285, 0x3356001, false},
  };
  return specs;
}

std::vector<IspSpec> table2_specs() {
  std::vector<IspSpec> out;
  for (const IspSpec& s : rocketfuel_specs()) {
    if (s.core) out.push_back(s);
  }
  return out;
}

const IspSpec& spec_by_name(const std::string& name) {
  for (const IspSpec& s : rocketfuel_specs()) {
    if (s.name == name) return s;
  }
  throw std::out_of_range("unknown topology: " + name);
}

}  // namespace rtr::graph
