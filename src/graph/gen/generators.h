// Elementary topology generators used by tests and property suites.
#pragma once

#include "common/rng.h"
#include "graph/graph.h"

namespace rtr::graph {

/// rows x cols grid with unit spacing scaled by `spacing`; planar.
Graph make_grid(std::size_t rows, std::size_t cols, double spacing = 100.0);

/// n-node cycle embedded on a circle; planar.
Graph make_ring(std::size_t n, double radius = 500.0,
                geom::Point center = {1000.0, 1000.0});

/// Random geometric graph: n nodes uniform in [0, extent]^2, link when
/// within `radius`.  Not guaranteed connected; callers may retry.
Graph make_random_geometric(std::size_t n, double radius, double extent,
                            Rng& rng);

/// Random tree: node i attaches to a uniformly random earlier node.
/// Always connected, n-1 links.
Graph make_random_tree(std::size_t n, double extent, Rng& rng);

/// Waxman graph on top of a random spanning tree (always connected):
/// extra pair (u, v) linked with probability alpha * exp(-d / (beta * L))
/// where L is the plane diagonal.
Graph make_waxman(std::size_t n, double alpha, double beta, double extent,
                  Rng& rng);

}  // namespace rtr::graph
