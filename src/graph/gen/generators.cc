#include "graph/gen/generators.h"

#include <cmath>
#include <numbers>

namespace rtr::graph {

namespace {

// Shared by make_random_tree and make_waxman: a uniform random spanning
// tree grown by attaching each new node to a uniformly chosen earlier
// one.  Returned as a builder so make_waxman can keep densifying.
GraphBuilder random_tree_builder(std::size_t n, double extent, Rng& rng) {
  RTR_EXPECT(n >= 1 && extent > 0.0);
  GraphBuilder g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node({rng.uniform_real(0.0, extent), rng.uniform_real(0.0, extent)});
    if (i > 0) {
      g.add_link(static_cast<NodeId>(i),
                 static_cast<NodeId>(rng.index(i)));
    }
  }
  return g;
}

}  // namespace

Graph make_grid(std::size_t rows, std::size_t cols, double spacing) {
  RTR_EXPECT(rows >= 1 && cols >= 1);
  GraphBuilder g;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_node({static_cast<double>(c) * spacing,
                  static_cast<double>(r) * spacing});
    }
  }
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_link(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_link(id(r, c), id(r + 1, c));
    }
  }
  return g.build();
}

Graph make_ring(std::size_t n, double radius, geom::Point center) {
  RTR_EXPECT(n >= 3);
  GraphBuilder g;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * static_cast<double>(i) /
                     static_cast<double>(n);
    g.add_node({center.x + radius * std::cos(a),
                center.y + radius * std::sin(a)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return g.build();
}

Graph make_random_geometric(std::size_t n, double radius, double extent,
                            Rng& rng) {
  RTR_EXPECT(n >= 1 && radius > 0.0 && extent > 0.0);
  GraphBuilder g;
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node({rng.uniform_real(0.0, extent), rng.uniform_real(0.0, extent)});
  }
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (geom::distance(g.position(u), g.position(v)) <= radius) {
        g.add_link(u, v);
      }
    }
  }
  return g.build();
}

Graph make_random_tree(std::size_t n, double extent, Rng& rng) {
  return random_tree_builder(n, extent, rng).build();
}

Graph make_waxman(std::size_t n, double alpha, double beta, double extent,
                  Rng& rng) {
  GraphBuilder g = random_tree_builder(n, extent, rng);
  const double diag = extent * std::numbers::sqrt2;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (g.find_link(u, v) != kNoLink) continue;
      const double d = geom::distance(g.position(u), g.position(v));
      if (rng.bernoulli(alpha * std::exp(-d / (beta * diag)))) {
        g.add_link(u, v);
      }
    }
  }
  return g.build();
}

}  // namespace rtr::graph
