#include "graph/gen/scale_gen.h"

#include <cmath>

#include "common/rng.h"
#include "geom/point.h"

namespace rtr::graph {

Graph make_scale_topology(const ScaleSpec& spec) {
  RTR_EXPECT(spec.nodes >= 1 && spec.spacing > 0.0 && spec.jitter >= 0.0);
  RTR_EXPECT(spec.express_cost_factor > 0.0);
  const std::size_t n = spec.nodes;
  const std::size_t cols = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  Rng rng(spec.seed);

  GraphBuilder g;
  g.reserve(n, 2 * n + (spec.express_stride > 0
                            ? n / spec.express_stride
                            : 0));

  // Backbone: row-major jittered grid.  Node i sits near cell
  // (i / cols, i % cols); linking west (same row) and north keeps the
  // graph connected for ANY n, including a ragged last row.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = i / cols;
    const std::size_t col = i % cols;
    const double jx =
        spec.jitter > 0.0
            ? rng.uniform_real(-spec.jitter, spec.jitter)
            : 0.0;
    const double jy =
        spec.jitter > 0.0
            ? rng.uniform_real(-spec.jitter, spec.jitter)
            : 0.0;
    g.add_node({static_cast<double>(col) * spec.spacing + jx,
                static_cast<double>(row) * spec.spacing + jy});
    const NodeId v = static_cast<NodeId>(i);
    if (col > 0) {
      const NodeId west = static_cast<NodeId>(i - 1);
      g.add_link(west, v, geom::distance(g.position(west), g.position(v)));
    }
    if (row > 0) {
      const NodeId north = static_cast<NodeId>(i - cols);
      g.add_link(north, v,
                 geom::distance(g.position(north), g.position(v)));
    }
  }

  // Express overlay: sparse long-range trunks at a discounted cost, so
  // they carry real shortest-path traffic.  Collisions with existing
  // links (or self) are skipped, not retried, keeping the pass O(n)
  // and the draw count a pure function of the spec.
  if (spec.express_stride > 0) {
    for (std::size_t i = spec.express_stride / 2; i < n;
         i += spec.express_stride) {
      const NodeId u = static_cast<NodeId>(i);
      const NodeId v = static_cast<NodeId>(rng.index(n));
      if (u == v || g.find_link(u, v) != kNoLink) continue;
      g.add_link(u, v,
                 spec.express_cost_factor *
                     geom::distance(g.position(u), g.position(v)));
    }
  }
  return g.build();
}

}  // namespace rtr::graph
