// Continental-scale synthetic topology generator for the bench_scale
// family.  The Rocketfuel surrogates (isp_gen.h) top out near 10^3
// nodes; exercising the CSR graph core and the delta-compressed base
// tree store needs 10^5-10^6 nodes, far beyond anything a rejection-
// sampling generator can produce in bench time.  This one is O(n) and
// connected by construction: a jittered grid backbone (every node links
// to its west and north neighbour) overlaid with sparse long-range
// express links, mimicking a continental IP network's mesh of regional
// rings plus inter-city trunks.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace rtr::graph {

struct ScaleSpec {
  std::size_t nodes = 100000;   ///< >= 1
  double spacing = 100.0;       ///< grid pitch between neighbours
  double jitter = 30.0;         ///< max per-axis placement jitter
  /// One long-range express link is attempted per this many nodes
  /// (0 disables them); targets are drawn from the seeded stream.
  std::size_t express_stride = 64;
  /// Express links are priced at this fraction of their Euclidean
  /// length, so shortest paths actually route through them (and base
  /// trees gain the far-away parents that stress delta compression).
  double express_cost_factor = 0.25;
  std::uint64_t seed = 1;
};

/// Deterministic pure function of the spec: same spec, same graph,
/// bit-for-bit -- node ids, link ids, coordinates and costs.
Graph make_scale_topology(const ScaleSpec& spec);

}  // namespace rtr::graph
