#include "graph/properties.h"

#include <queue>

namespace rtr::graph {

std::vector<char> reachable_from(const Graph& g, NodeId src,
                                 const Masks& masks) {
  RTR_EXPECT(g.valid_node(src));
  std::vector<char> seen(g.num_nodes(), 0);
  if (!masks.node_ok(src)) return seen;
  std::queue<NodeId> q;
  q.push(src);
  seen[src] = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const Adjacency& a : g.neighbors(u)) {
      if (seen[a.neighbor] || !masks.link_ok(a.link) ||
          !masks.node_ok(a.neighbor)) {
        continue;
      }
      seen[a.neighbor] = 1;
      q.push(a.neighbor);
    }
  }
  return seen;
}

bool reachable(const Graph& g, NodeId src, NodeId dst, const Masks& masks) {
  RTR_EXPECT(g.valid_node(dst));
  return reachable_from(g, src, masks)[dst] != 0;
}

bool connected(const Graph& g, const Masks& masks) {
  const NodeId n = g.node_count();
  NodeId start = kNoNode;
  std::size_t alive = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (masks.node_ok(i)) {
      ++alive;
      if (start == kNoNode) start = i;
    }
  }
  if (alive <= 1) return true;
  const std::vector<char> seen = reachable_from(g, start, masks);
  std::size_t cnt = 0;
  for (NodeId i = 0; i < n; ++i) cnt += static_cast<std::size_t>(seen[i]);
  return cnt == alive;
}

Components components(const Graph& g, const Masks& masks) {
  Components out;
  out.id.assign(g.num_nodes(), kNoNode);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    if (!masks.node_ok(i) || out.id[i] != kNoNode) continue;
    const NodeId comp = static_cast<NodeId>(out.count++);
    std::queue<NodeId> q;
    q.push(i);
    out.id[i] = comp;
    while (!q.empty()) {
      const NodeId u = q.front();
      q.pop();
      for (const Adjacency& a : g.neighbors(u)) {
        if (out.id[a.neighbor] != kNoNode || !masks.link_ok(a.link) ||
            !masks.node_ok(a.neighbor)) {
          continue;
        }
        out.id[a.neighbor] = comp;
        q.push(a.neighbor);
      }
    }
  }
  return out;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const NodeId n = g.node_count();
  if (n == 0) return s;
  s.min_degree = g.degree(0);
  for (NodeId i = 0; i < n; ++i) {
    const std::size_t d = g.degree(i);
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
    s.mean_degree += static_cast<double>(d);
    if (d == 1) ++s.leaves;
    if (d <= 2) ++s.degree_le_two;
  }
  s.mean_degree /= static_cast<double>(n);
  return s;
}

}  // namespace rtr::graph
