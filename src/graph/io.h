// Plain-text topology serialization.
//
// Format (one record per line, '#' starts a comment):
//   node <x> <y>
//   link <u> <v> <cost_uv> [<cost_vu>]
// Nodes are implicitly numbered in order of appearance.  The format is
// deliberately trivial so that generated surrogate topologies can be
// dumped, inspected, diffed and re-loaded by the benches and examples.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace rtr::graph {

/// Thrown on malformed topology input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writes g to the stream in the text format above.
void write_graph(std::ostream& os, const Graph& g);

/// Parses a graph from the stream.  Throws ParseError on malformed input
/// (unknown record, bad arity, link before both endpoints exist, ...).
Graph read_graph(std::istream& is);

/// Convenience: serialize to / parse from a string.
std::string to_string(const Graph& g);
Graph from_string(const std::string& text);

/// File helpers.  Throw std::runtime_error when the file cannot be
/// opened and ParseError on malformed content.
void save_graph(const std::string& path, const Graph& g);
Graph load_graph(const std::string& path);

}  // namespace rtr::graph
