// Per-link crossing sets.
//
// Section III-C: "For each link, routers precompute the set of links
// across it."  CrossingIndex is that precomputation; the phase-1
// forwarding rule consults it to enforce Constraints 1 and 2, and the
// planarity diagnostics feed topology statistics and tests.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rtr::graph {

/// Immutable index of which links properly cross which.
class CrossingIndex {
 public:
  /// Builds the index in O(E^2) segment tests; E is a few hundred for
  /// the topologies under study so this is microseconds.
  explicit CrossingIndex(const Graph& g);

  /// Links that properly cross link l (sorted ascending).
  const std::vector<LinkId>& crossing(LinkId l) const {
    RTR_EXPECT(l < crossing_.size());
    return crossing_[l];
  }

  /// True when links a and b properly cross.
  bool cross(LinkId a, LinkId b) const;

  /// Total number of unordered crossing pairs.
  std::size_t num_crossing_pairs() const { return num_pairs_; }

  /// True when the embedding has no crossing links (a planar embedding,
  /// the easy case of Section III-B).
  bool planar_embedding() const { return num_pairs_ == 0; }

 private:
  std::vector<std::vector<LinkId>> crossing_;
  std::size_t num_pairs_ = 0;
};

}  // namespace rtr::graph
