// Structural graph queries: connectivity, components, degree statistics.
//
// These back the failure classifier (recoverable vs irrecoverable test
// cases, Section IV-A), the topology generator's feasibility checks, and
// the per-topology statistics printed by the benches.
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace rtr::graph {

/// Optional node/link masks: an element set to true is treated as absent
/// (failed).  Either pointer may be null meaning "nothing masked".
struct Masks {
  const std::vector<char>* node_failed = nullptr;
  const std::vector<char>* link_failed = nullptr;

  bool node_ok(NodeId n) const {
    return node_failed == nullptr || !(*node_failed)[n];
  }
  bool link_ok(LinkId l) const {
    return link_failed == nullptr || !(*link_failed)[l];
  }
};

/// Nodes reachable from src (including src) honouring the masks.
/// Returns an empty vector when src itself is masked.
std::vector<char> reachable_from(const Graph& g, NodeId src,
                                 const Masks& masks = {});

/// True when dst is reachable from src honouring the masks.
bool reachable(const Graph& g, NodeId src, NodeId dst,
               const Masks& masks = {});

/// True when all unmasked nodes lie in one connected component.
bool connected(const Graph& g, const Masks& masks = {});

/// Component id per node (kNoNode-sized ids for masked nodes are set to
/// kNoNode cast down; use component_count to know how many there are).
struct Components {
  std::vector<NodeId> id;   ///< per node; kNoNode for masked nodes
  std::size_t count = 0;    ///< number of components among unmasked nodes
};
Components components(const Graph& g, const Masks& masks = {});

/// Degree distribution statistics for topology reporting.
struct DegreeStats {
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double mean_degree = 0.0;
  std::size_t leaves = 0;           ///< degree-1 nodes ("tree branches")
  std::size_t degree_le_two = 0;    ///< nodes on chains or branches
};
DegreeStats degree_stats(const Graph& g);

}  // namespace rtr::graph
