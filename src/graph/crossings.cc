#include "graph/crossings.h"

#include <algorithm>

#include "geom/segment.h"

namespace rtr::graph {

CrossingIndex::CrossingIndex(const Graph& g) {
  const LinkId m = g.link_count();
  crossing_.resize(m);
  std::vector<geom::Segment> segs;
  segs.reserve(m);
  for (LinkId l = 0; l < m; ++l) segs.push_back(g.segment(l));
  for (LinkId a = 0; a < m; ++a) {
    for (LinkId b = a + 1; b < m; ++b) {
      if (geom::properly_cross(segs[a], segs[b])) {
        crossing_[a].push_back(b);
        crossing_[b].push_back(a);
        ++num_pairs_;
      }
    }
  }
  // Ascending order within each list (construction already yields it for
  // the second index but not the first).
  for (auto& v : crossing_) std::sort(v.begin(), v.end());
}

bool CrossingIndex::cross(LinkId a, LinkId b) const {
  RTR_EXPECT(a < crossing_.size() && b < crossing_.size());
  const auto& v = crossing_[a];
  return std::binary_search(v.begin(), v.end(), b);
}

}  // namespace rtr::graph
