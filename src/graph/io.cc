#include "graph/io.h"

#include <fstream>
#include <sstream>

namespace rtr::graph {

void write_graph(std::ostream& os, const Graph& g) {
  os << "# rtr topology: " << g.num_nodes() << " nodes, " << g.num_links()
     << " links\n";
  for (NodeId n = 0; n < g.node_count(); ++n) {
    const geom::Point p = g.position(n);
    os << "node " << p.x << ' ' << p.y << '\n';
  }
  for (LinkId l = 0; l < g.link_count(); ++l) {
    const Link& e = g.link(l);
    os << "link " << e.u << ' ' << e.v << ' ' << e.cost_uv;
    if (e.cost_vu != e.cost_uv) os << ' ' << e.cost_vu;
    os << '\n';
  }
}

Graph read_graph(std::istream& is) {
  GraphBuilder g;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    const auto fail = [&](const std::string& why) {
      throw ParseError("line " + std::to_string(lineno) + ": " + why);
    };
    if (kind == "node") {
      double x = 0.0;
      double y = 0.0;
      if (!(ls >> x >> y)) fail("expected: node <x> <y>");
      g.add_node({x, y});
    } else if (kind == "link") {
      NodeId u = 0;
      NodeId v = 0;
      Cost c_uv = 0.0;
      if (!(ls >> u >> v >> c_uv)) fail("expected: link <u> <v> <cost>");
      Cost c_vu = c_uv;
      ls >> c_vu;  // optional reverse cost
      if (u >= g.num_nodes() || v >= g.num_nodes()) {
        fail("link endpoint not yet declared");
      }
      if (u == v) fail("self-loop");
      if (g.find_link(u, v) != kNoLink) fail("duplicate link");
      if (c_uv <= 0.0 || c_vu <= 0.0) fail("non-positive link cost");
      g.add_link_asym(u, v, c_uv, c_vu);
    } else {
      fail("unknown record '" + kind + "'");
    }
  }
  return g.build();
}

std::string to_string(const Graph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

Graph from_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

void save_graph(const std::string& path, const Graph& g) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  write_graph(f, g);
}

Graph load_graph(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  return read_graph(f);
}

}  // namespace rtr::graph
