// The network model of Section II-A: an undirected graph whose nodes
// (routers) are embedded in the plane and whose links carry costs that
// may be asymmetric (c_ij != c_ji).  Every router in an AS knows the
// full topology and the coordinates of all nodes, so Graph is the shared
// "map" each simulated router consults.
#pragma once

#include <string>
#include <vector>

#include "common/expect.h"
#include "common/types.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace rtr::graph {

/// An undirected link e_{u,v}.  cost_uv is the cost from u to v and
/// cost_vu from v to u; the evaluation uses hop count (both 1).
struct Link {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Cost cost_uv = 1.0;
  Cost cost_vu = 1.0;
};

/// One adjacency entry: the neighbour reached and the link used.
struct Adjacency {
  NodeId neighbor = kNoNode;
  LinkId link = kNoLink;
};

/// Undirected simple graph with planar embedding.
///
/// Nodes and links are dense 0-based indices, so algorithms use plain
/// vectors indexed by id.  Parallel links and self-loops are rejected:
/// the protocol identifies a link by the unordered pair of endpoints in
/// several places (e.g. "the link between the recovery initiator and an
/// unreachable neighbour").
class Graph {
 public:
  /// Adds a router at position p; returns its id.
  NodeId add_node(geom::Point p);

  /// Adds an undirected link between distinct existing nodes u and v with
  /// symmetric cost `cost`; returns its id.  Requires no existing u-v link.
  LinkId add_link(NodeId u, NodeId v, Cost cost = 1.0);

  /// Adds a link with asymmetric per-direction costs.
  LinkId add_link_asym(NodeId u, NodeId v, Cost cost_uv, Cost cost_vu);

  std::size_t num_nodes() const { return coords_.size(); }
  std::size_t num_links() const { return links_.size(); }

  /// num_nodes()/num_links() in id width, for counter loops over ids.
  /// Ids are dense, so `for (NodeId n = 0; n < g.node_count(); ++n)`
  /// visits every node without a mixed-width comparison.
  NodeId node_count() const { return static_cast<NodeId>(coords_.size()); }
  LinkId link_count() const { return static_cast<LinkId>(links_.size()); }

  bool valid_node(NodeId n) const { return n < coords_.size(); }
  bool valid_link(LinkId l) const { return l < links_.size(); }

  geom::Point position(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    return coords_[n];
  }

  const Link& link(LinkId l) const {
    RTR_EXPECT(valid_link(l));
    return links_[l];
  }

  /// The geometric segment a link occupies in the embedding.
  geom::Segment segment(LinkId l) const {
    const Link& e = link(l);
    return {coords_[e.u], coords_[e.v]};
  }

  /// The endpoint of link l that is not n.  Requires n incident to l.
  NodeId other_end(LinkId l, NodeId n) const {
    const Link& e = link(l);
    RTR_EXPECT(e.u == n || e.v == n);
    return e.u == n ? e.v : e.u;
  }

  /// Directed cost of traversing link l from node `from`.
  Cost cost_from(LinkId l, NodeId from) const {
    const Link& e = link(l);
    RTR_EXPECT(e.u == from || e.v == from);
    return e.u == from ? e.cost_uv : e.cost_vu;
  }

  /// Adjacency list of node n (neighbour, link) pairs in insertion order.
  const std::vector<Adjacency>& neighbors(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    return adj_[n];
  }

  std::size_t degree(NodeId n) const { return neighbors(n).size(); }

  /// The link between u and v, or kNoLink when absent.
  LinkId find_link(NodeId u, NodeId v) const;

  /// Human-readable link name "e(u,v)" for logs and traces.
  std::string link_name(LinkId l) const;

 private:
  std::vector<geom::Point> coords_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adj_;
};

}  // namespace rtr::graph
