// The network model of Section II-A: an undirected graph whose nodes
// (routers) are embedded in the plane and whose links carry costs that
// may be asymmetric (c_ij != c_ji).  Every router in an AS knows the
// full topology and the coordinates of all nodes, so Graph is the shared
// "map" each simulated router consults.
//
// Storage is CSR / struct-of-arrays over one arena block: coordinates,
// links, per-node adjacency offsets and two adjacency orderings --
// insertion order (what neighbors() iterates, preserving the historical
// vector-of-vectors order bit-for-bit) and neighbour-id order (what
// find_link() binary-searches and sorted_neighbors() iterates).  A
// Graph is frozen at construction: build one through GraphBuilder,
// which owns the only mutable representation.  Copies share the frozen
// storage (shared_ptr), so passing Graph by value is O(1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/expect.h"
#include "common/types.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace rtr::graph {

/// An undirected link e_{u,v}.  cost_uv is the cost from u to v and
/// cost_vu from v to u; the evaluation uses hop count (both 1).
struct Link {
  NodeId u = kNoNode;
  NodeId v = kNoNode;
  Cost cost_uv = 1.0;
  Cost cost_vu = 1.0;
};

/// One adjacency entry: the neighbour reached and the link used.
struct Adjacency {
  NodeId neighbor = kNoNode;
  LinkId link = kNoLink;
};

/// Immutable view of one node's adjacency slice in the CSR arena.
class AdjacencySpan {
 public:
  using value_type = Adjacency;
  using const_iterator = const Adjacency*;

  AdjacencySpan() = default;
  AdjacencySpan(const Adjacency* data, std::size_t size)
      : data_(data), size_(size) {}

  const Adjacency* begin() const { return data_; }
  const Adjacency* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Adjacency& operator[](std::size_t i) const { return data_[i]; }

 private:
  const Adjacency* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Frozen undirected simple graph with planar embedding.
///
/// Nodes and links are dense 0-based indices, so algorithms use plain
/// vectors indexed by id.  Parallel links and self-loops are rejected
/// at build time: the protocol identifies a link by the unordered pair
/// of endpoints in several places (e.g. "the link between the recovery
/// initiator and an unreachable neighbour").
class Graph {
 public:
  /// An empty graph (no storage allocated).
  Graph() = default;

  std::size_t num_nodes() const { return st().num_nodes; }
  std::size_t num_links() const { return st().num_links; }

  /// num_nodes()/num_links() in id width, for counter loops over ids.
  /// Ids are dense, so `for (NodeId n = 0; n < g.node_count(); ++n)`
  /// visits every node without a mixed-width comparison.
  NodeId node_count() const { return static_cast<NodeId>(st().num_nodes); }
  LinkId link_count() const { return static_cast<LinkId>(st().num_links); }

  bool valid_node(NodeId n) const { return n < st().num_nodes; }
  bool valid_link(LinkId l) const { return l < st().num_links; }

  geom::Point position(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    return st().coords[n];
  }

  const Link& link(LinkId l) const {
    RTR_EXPECT(valid_link(l));
    return st().links[l];
  }

  /// The geometric segment a link occupies in the embedding.
  geom::Segment segment(LinkId l) const {
    const Link& e = link(l);
    return {st().coords[e.u], st().coords[e.v]};
  }

  /// The endpoint of link l that is not n.  Requires n incident to l.
  NodeId other_end(LinkId l, NodeId n) const {
    const Link& e = link(l);
    RTR_EXPECT(e.u == n || e.v == n);
    return e.u == n ? e.v : e.u;
  }

  /// Directed cost of traversing link l from node `from`.
  Cost cost_from(LinkId l, NodeId from) const {
    const Link& e = link(l);
    RTR_EXPECT(e.u == from || e.v == from);
    return e.u == from ? e.cost_uv : e.cost_vu;
  }

  /// Adjacency of node n, (neighbour, link) pairs in insertion order --
  /// the same order the historical vector-of-vectors representation
  /// iterated, so consumers' tie-breaks are unchanged.
  AdjacencySpan neighbors(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    const Storage& s = st();
    return {s.adj + s.adj_offset[n], s.adj_offset[n + 1] - s.adj_offset[n]};
  }

  /// Adjacency of node n in ascending neighbour-id order (the order
  /// find_link() binary-searches).  BFS uses this directly instead of
  /// copying and sorting each node's list.
  AdjacencySpan sorted_neighbors(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    const Storage& s = st();
    return {s.adj_sorted + s.adj_offset[n],
            s.adj_offset[n + 1] - s.adj_offset[n]};
  }

  std::size_t degree(NodeId n) const { return neighbors(n).size(); }

  /// The link between u and v, or kNoLink when absent.  Binary search
  /// over the sorted adjacency of the smaller-degree endpoint.
  LinkId find_link(NodeId u, NodeId v) const;

  /// Human-readable link name "e(u,v)" for logs and traces.
  std::string link_name(LinkId l) const;

  /// Bytes of frozen storage (the arena block): the resident footprint
  /// a topology contributes, reported by bench_scale.
  std::size_t storage_bytes() const { return st().arena.capacity(); }

 private:
  friend class GraphBuilder;

  /// The frozen struct-of-arrays payload; all pointers alias the arena.
  struct Storage {
    common::Arena arena;
    std::size_t num_nodes = 0;
    std::size_t num_links = 0;
    const geom::Point* coords = nullptr;   ///< [num_nodes]
    const Link* links = nullptr;           ///< [num_links]
    const std::uint64_t* adj_offset = nullptr;  ///< [num_nodes + 1]
    const Adjacency* adj = nullptr;         ///< [2 * num_links], insertion
    const Adjacency* adj_sorted = nullptr;  ///< [2 * num_links], by id
  };

  explicit Graph(std::shared_ptr<const Storage> s) : s_(std::move(s)) {}

  static const Storage& empty_storage() {
    static const Storage kEmpty;
    return kEmpty;
  }

  const Storage& st() const { return s_ != nullptr ? *s_ : empty_storage(); }

  std::shared_ptr<const Storage> s_;
};

/// Mutable construction-time representation: cheap appends over
/// vector-of-vectors adjacency, frozen into a CSR Graph by build().
/// Supports the structural queries topology generators interleave with
/// construction (degree-weighted attachment, duplicate-link probes).
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Test seam: lower the id-space bounds so the overflow guards can be
  /// exercised without 2^32 allocations.  Ids must stay below the
  /// kNoNode/kNoLink sentinels; production builders use the defaults.
  GraphBuilder(NodeId max_nodes, LinkId max_links)
      : max_nodes_(max_nodes), max_links_(max_links) {}

  /// Adds a router at position p; returns its id.
  NodeId add_node(geom::Point p);

  /// Adds an undirected link between distinct existing nodes u and v with
  /// symmetric cost `cost`; returns its id.  Requires no existing u-v link.
  LinkId add_link(NodeId u, NodeId v, Cost cost = 1.0);

  /// Adds a link with asymmetric per-direction costs.
  LinkId add_link_asym(NodeId u, NodeId v, Cost cost_uv, Cost cost_vu);

  /// Pre-sizes the node/link arrays (optional; build() packs exactly).
  void reserve(std::size_t nodes, std::size_t links);

  std::size_t num_nodes() const { return coords_.size(); }
  std::size_t num_links() const { return links_.size(); }
  NodeId node_count() const { return static_cast<NodeId>(coords_.size()); }
  LinkId link_count() const { return static_cast<LinkId>(links_.size()); }
  bool valid_node(NodeId n) const { return n < coords_.size(); }
  bool valid_link(LinkId l) const { return l < links_.size(); }

  geom::Point position(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    return coords_[n];
  }

  const Link& link(LinkId l) const {
    RTR_EXPECT(valid_link(l));
    return links_[l];
  }

  std::size_t degree(NodeId n) const {
    RTR_EXPECT(valid_node(n));
    return adj_[n].size();
  }

  /// The link between u and v, or kNoLink when absent (linear scan of
  /// the smaller adjacency list; the sorted index exists only after
  /// build()).
  LinkId find_link(NodeId u, NodeId v) const;

  /// Freezes the accumulated topology into an immutable CSR Graph and
  /// resets the builder to empty.
  Graph build();

 private:
  NodeId max_nodes_ = kNoNode;
  LinkId max_links_ = kNoLink;
  std::vector<geom::Point> coords_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adj_;
};

}  // namespace rtr::graph
