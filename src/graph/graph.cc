#include "graph/graph.h"

#include <algorithm>
#include <memory>

namespace rtr::graph {

LinkId Graph::find_link(NodeId u, NodeId v) const {
  RTR_EXPECT(valid_node(u) && valid_node(v));
  // Binary-search the sorted adjacency of the smaller-degree endpoint.
  const NodeId base = degree(u) <= degree(v) ? u : v;
  const NodeId target = base == u ? v : u;
  const AdjacencySpan adj = sorted_neighbors(base);
  const Adjacency* it = std::lower_bound(
      adj.begin(), adj.end(), target,
      [](const Adjacency& a, NodeId key) { return a.neighbor < key; });
  if (it != adj.end() && it->neighbor == target) return it->link;
  return kNoLink;
}

std::string Graph::link_name(LinkId l) const {
  const Link& e = link(l);
  return "e(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
}

NodeId GraphBuilder::add_node(geom::Point p) {
  RTR_EXPECT_MSG(coords_.size() < max_nodes_,
                 "node id space exhausted: adding this node would wrap NodeId");
  coords_.push_back(p);
  adj_.emplace_back();
  return static_cast<NodeId>(coords_.size() - 1);
}

LinkId GraphBuilder::add_link(NodeId u, NodeId v, Cost cost) {
  return add_link_asym(u, v, cost, cost);
}

LinkId GraphBuilder::add_link_asym(NodeId u, NodeId v, Cost cost_uv,
                                   Cost cost_vu) {
  RTR_EXPECT(valid_node(u) && valid_node(v));
  RTR_EXPECT_MSG(u != v, "self-loops are not allowed");
  RTR_EXPECT_MSG(find_link(u, v) == kNoLink, "parallel links are not allowed");
  RTR_EXPECT(cost_uv > 0.0 && cost_vu > 0.0);
  RTR_EXPECT_MSG(links_.size() < max_links_,
                 "link id space exhausted: adding this link would wrap LinkId");
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{u, v, cost_uv, cost_vu});
  adj_[u].push_back(Adjacency{v, id});
  adj_[v].push_back(Adjacency{u, id});
  return id;
}

void GraphBuilder::reserve(std::size_t nodes, std::size_t links) {
  coords_.reserve(nodes);
  links_.reserve(links);
  adj_.reserve(nodes);
}

LinkId GraphBuilder::find_link(NodeId u, NodeId v) const {
  RTR_EXPECT(valid_node(u) && valid_node(v));
  // Scan the smaller adjacency list.
  const NodeId base = adj_[u].size() <= adj_[v].size() ? u : v;
  const NodeId target = base == u ? v : u;
  for (const Adjacency& a : adj_[base]) {
    if (a.neighbor == target) return a.link;
  }
  return kNoLink;
}

Graph GraphBuilder::build() {
  const std::size_t n = coords_.size();
  const std::size_t m = links_.size();
  const std::size_t entries = 2 * m;

  auto storage = std::make_shared<Graph::Storage>();
  storage->num_nodes = n;
  storage->num_links = m;

  const std::size_t bytes =
      common::Arena::bytes_for<geom::Point>(n) +
      common::Arena::bytes_for<Link>(m) +
      common::Arena::bytes_for<std::uint64_t>(n + 1) +
      common::Arena::bytes_for<Adjacency>(entries) +
      common::Arena::bytes_for<Adjacency>(entries);
  storage->arena = common::Arena(bytes);
  common::Arena& arena = storage->arena;

  geom::Point* coords = arena.allocate_array<geom::Point>(n);
  std::uninitialized_copy(coords_.begin(), coords_.end(), coords);
  storage->coords = coords;

  Link* links = arena.allocate_array<Link>(m);
  std::uninitialized_copy(links_.begin(), links_.end(), links);
  storage->links = links;

  std::uint64_t* offsets = arena.allocate_array<std::uint64_t>(n + 1);
  offsets[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    offsets[v + 1] = offsets[v] + adj_[v].size();
  }
  storage->adj_offset = offsets;

  Adjacency* adj = arena.allocate_array<Adjacency>(entries);
  Adjacency* adj_sorted = arena.allocate_array<Adjacency>(entries);
  for (std::size_t v = 0; v < n; ++v) {
    Adjacency* slice = adj + offsets[v];
    std::uninitialized_copy(adj_[v].begin(), adj_[v].end(), slice);
    Adjacency* sorted_slice = adj_sorted + offsets[v];
    std::uninitialized_copy(adj_[v].begin(), adj_[v].end(), sorted_slice);
    // Neighbour ids within a node are unique (no parallel links), so
    // sorting by neighbour id is a total order.
    std::sort(sorted_slice, sorted_slice + adj_[v].size(),
              [](const Adjacency& a, const Adjacency& b) {
                return a.neighbor < b.neighbor;
              });
  }
  storage->adj = adj;
  storage->adj_sorted = adj_sorted;

  coords_.clear();
  links_.clear();
  adj_.clear();
  return Graph(std::move(storage));
}

}  // namespace rtr::graph
