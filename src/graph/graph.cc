#include "graph/graph.h"

namespace rtr::graph {

NodeId Graph::add_node(geom::Point p) {
  coords_.push_back(p);
  adj_.emplace_back();
  return static_cast<NodeId>(coords_.size() - 1);
}

LinkId Graph::add_link(NodeId u, NodeId v, Cost cost) {
  return add_link_asym(u, v, cost, cost);
}

LinkId Graph::add_link_asym(NodeId u, NodeId v, Cost cost_uv, Cost cost_vu) {
  RTR_EXPECT(valid_node(u) && valid_node(v));
  RTR_EXPECT_MSG(u != v, "self-loops are not allowed");
  RTR_EXPECT_MSG(find_link(u, v) == kNoLink, "parallel links are not allowed");
  RTR_EXPECT(cost_uv > 0.0 && cost_vu > 0.0);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{u, v, cost_uv, cost_vu});
  adj_[u].push_back(Adjacency{v, id});
  adj_[v].push_back(Adjacency{u, id});
  return id;
}

LinkId Graph::find_link(NodeId u, NodeId v) const {
  RTR_EXPECT(valid_node(u) && valid_node(v));
  // Scan the smaller adjacency list.
  const NodeId base = adj_[u].size() <= adj_[v].size() ? u : v;
  const NodeId target = base == u ? v : u;
  for (const Adjacency& a : adj_[base]) {
    if (a.neighbor == target) return a.link;
  }
  return kNoLink;
}

std::string Graph::link_name(LinkId l) const {
  const Link& e = link(l);
  return "e(" + std::to_string(e.u) + "," + std::to_string(e.v) + ")";
}

}  // namespace rtr::graph
