// The 18-router example network of the paper's Figures 1, 2, 4 and 6.
//
// The embedding below was constructed so that the implementation
// reproduces the paper's worked examples exactly:
//  * the general graph's phase-1 traversal and the per-hop contents of
//    failed_link / cross_link match Table I hop for hop;
//  * the planar variant (the general graph minus its three crossing
//    links) records exactly the four failed links the paper lists for
//    Figure 2 (e5,10, e9,10, e14,10, e11,10);
//  * the default routing path from v7 to v17 is v7-v6-v11-v15-v17 and is
//    disconnected at e6,11 by the failure area, making v6 the recovery
//    initiator (Section II-B).
// Node vK of the paper is node id K-1 here (dense 0-based ids).
#pragma once

#include "geom/circle.h"
#include "graph/graph.h"

namespace rtr::graph {

/// Paper node vK as a 0-based NodeId.
constexpr NodeId paper_node(int k) { return static_cast<NodeId>(k - 1); }

/// The general (non-planar) graph of Figures 4 and 6: 18 nodes, 31
/// links, four crossing pairs.
Graph fig1_graph();

/// The planar variant of Figure 2: fig1_graph() without the three
/// crossing links e5,12, e4,11 and e14,12.
Graph fig1_planar_graph();

/// The failure area of the worked example: a circle that destroys v10
/// and cuts e6,11 (and, in the general graph, e4,11).
geom::Circle fig1_failure_area();

}  // namespace rtr::graph
