#include "graph/paper_topology.h"

#include "common/expect.h"

namespace rtr::graph {

namespace {

/// Coordinates eyeballed from Figure 1 (x to the right, y upward) and
/// then adjusted so every geometric predicate the worked example relies
/// on (which links cross, what the failure circle cuts) holds exactly.
constexpr double kCoords[18][2] = {
    {100, 540},  // v1
    {230, 560},  // v2
    {60, 300},   // v3
    {180, 460},  // v4
    {120, 380},  // v5
    {200, 280},  // v6
    {120, 190},  // v7
    {260, 180},  // v8
    {370, 480},  // v9
    {360, 370},  // v10
    {400, 280},  // v11
    {460, 180},  // v12
    {480, 570},  // v13
    {530, 470},  // v14
    {540, 300},  // v15
    {520, 90},   // v16
    {620, 390},  // v17
    {640, 200},  // v18
};

Graph build(bool planar) {
  GraphBuilder g;
  for (const auto& c : kCoords) g.add_node({c[0], c[1]});
  const auto link = [&g](int a, int b) {
    g.add_link(paper_node(a), paper_node(b));
  };
  // Perimeter/backbone links traversed by the phase-1 example.
  link(6, 5);
  link(5, 4);
  link(4, 9);
  link(9, 13);
  link(13, 14);
  link(12, 11);
  link(12, 8);
  link(8, 7);
  link(7, 6);
  // Default routing path towards v17 and its continuation.
  link(6, 11);
  link(11, 15);
  link(15, 17);
  // Links to v10 (destroyed by the failure area).
  link(5, 10);
  link(9, 10);
  link(14, 10);
  link(11, 10);
  // Periphery.
  link(1, 2);
  link(1, 4);
  link(2, 9);
  link(2, 13);
  link(3, 5);
  link(3, 6);
  link(3, 7);
  link(14, 17);
  link(17, 18);
  link(15, 16);
  link(12, 16);
  link(11, 16);
  if (!planar) {
    // The three crossing links that make Figures 4/6 a general graph:
    // e5,12 crosses e6,11; e4,11 crosses e5,10; e14,12 crosses e11,15
    // and e11,16.
    link(5, 12);
    link(4, 11);
    link(14, 12);
  }
  return g.build();
}

}  // namespace

Graph fig1_graph() { return build(/*planar=*/false); }

Graph fig1_planar_graph() { return build(/*planar=*/true); }

geom::Circle fig1_failure_area() { return {{370.0, 340.0}, 65.0}; }

}  // namespace rtr::graph
