// Regenerates Fig. 8: cumulative distribution of the stretch of
// successfully recovered paths (RTR vs FCP).  RTR's curve is a step at
// 1.0 by Theorem 2; FCP's tail extends to several times the optimum.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header("Fig. 8: CDF of the stretch of recovery paths", cfg);

  const std::vector<double> grid = {1.0, 1.25, 1.5, 2.0, 2.5,
                                    3.0, 3.5,  4.0, 4.5, 5.0};
  std::vector<std::string> header = {"Series"};
  for (double g : grid) header.push_back("<=" + stats::fmt(g, 2));
  stats::TextTable table(header);

  exp::RunOptions opts = bench::run_options(cfg);
  opts.run_mrc = false;
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    const exp::RecoverableResults r =
        exp::run_recoverable(ctx, scenarios, opts);
    for (const auto& [name, samples] :
         {std::pair<std::string, const std::vector<double>*>{
              "RTR (" + ctx.name + ")", &r.rtr_stretch},
          {"FCP (" + ctx.name + ")", &r.fcp_stretch}}) {
      const stats::Cdf cdf(*samples);
      std::vector<std::string> row = {name};
      for (double g : grid) {
        row.push_back(stats::fmt_pct(cdf.fraction_at_or_below(g)));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: RTR has stretch exactly 1 for every "
               "recovered path (Theorem 2); FCP reaches ~93-96% at "
               "stretch 1 and its tail extends to 2.5-5.0.\n";
  return 0;
}
