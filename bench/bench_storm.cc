// Rolling-disaster tier: seeded storm trajectories (moving, growing,
// flapping, overlapping failure areas) swept over the core-AS
// topologies, with the recoverable initiators' trees re-planned tick
// by tick from the shared base trees -- unthrottled and under a
// per-tick repair budget -- plus one scale_gen tier driving the storm
// engine directly on a generated continental topology.
//
// Everything on stdout is a pure function of (storm spec, seed):
// per-tick delta totals, repair-path tallies, budget stalls, drain
// ticks and final-tree digests are bit-identical across thread counts
// like every other bench.  Wall clock and peak RSS are volatile and go
// to stderr / the metrics timing block.
#include <cstring>
#include <iomanip>
#include <sstream>

#include "bench_common.h"
#include "common/expect.h"
#include "graph/gen/scale_gen.h"
#include "spf/batch_repair.h"
#include "stats/table.h"
#include "storm/engine.h"
#include "storm/timeline.h"

using namespace rtr;

namespace {

/// The checked-in default trajectory profile (used whenever RTR_STORM_*
/// leaves the layer disarmed): two overlapping cells, growing radius,
/// a quarter of covered links flapping.  bench/baseline.json pins the
/// op counts of exactly this profile.
exp::BenchConfig with_default_storm(exp::BenchConfig cfg) {
  if (!cfg.storm.any()) {
    cfg.storm.ticks = 20;
    cfg.storm.cells = 2;
    cfg.storm.growth = 5.0;
    cfg.storm.flap_prob = 0.25;
  }
  return cfg;
}

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << std::setfill('0') << std::setw(16) << v;
  return os.str();
}

void add_run_rows(stats::TextTable& table, const std::string& tier,
                  const exp::RecoverableResults& r) {
  table.add_row({tier, std::to_string(r.storm_ticks),
                 std::to_string(r.storm_drain_ticks),
                 std::to_string(r.storm_delta_links),
                 std::to_string(r.storm_delta_nodes),
                 std::to_string(r.storm_repairs),
                 std::to_string(r.storm_fallbacks),
                 std::to_string(r.storm_repair_ops),
                 std::to_string(r.storm_budget_stalls),
                 std::to_string(r.storm_shadowed_flaps),
                 std::to_string(r.storm_unreachable_pairs),
                 hex64(r.storm_dist_digest)});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  exp::BenchConfig cfg = bench::consume_engine_flags(args);
  unsigned long long nodes = 20000;  // scale-tier topology size
  for (std::size_t i = 1; i < args.size();) {
    std::string value;
    std::size_t consumed = 0;
    if (bench::detail::match_value_flag(args, i, "--nodes", &value,
                                        &consumed)) {
      if (!bench::detail::parse_u64(value, &nodes) || nodes == 0) {
        bench::detail::bad_flag_value("--nodes", value);
      }
      i += consumed;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--nodes N] [--threads N] [--metrics-out FILE]"
                   " [--storm-KNOB VALUE ...]\n"
                << "unrecognised argument: " << args[i] << '\n';
      return 2;
    }
  }
  cfg = with_default_storm(cfg);
  // Re-point the emitter now that the default profile is armed, so the
  // metrics document's config block records the storm knobs actually
  // swept (consume_engine_flags configured it before the default).
  {
    const char* slash = std::strrchr(argv[0], '/');
    bench::detail::configure_metrics_emitter(
        cfg, slash != nullptr ? slash + 1 : argv[0]);
  }
  bench::print_header("Storm tier: rolling-disaster trajectories with "
                      "budgeted incremental re-planning",
                      cfg);

  stats::TextTable table({"Tier", "Ticks", "Drain", "DLinks", "DNodes",
                          "Repairs", "Fallb", "Ops", "Stalls", "Shadow",
                          "Lost", "Digest"});

  // Core-AS tier: every scenario of the (reduced) paper workload runs
  // its own storm substream, unthrottled then budget-throttled.  The
  // digests of the two passes must match: the budget only delays
  // convergence, never changes the final trees.
  const std::size_t recoverable =
      cfg.cases / 10 > 50 ? cfg.cases / 10 : 50;
  for (const auto& ctx : bench::make_contexts(false)) {
    const std::vector<exp::Scenario> scenarios =
        bench::make_scenarios(*ctx, cfg, recoverable, 0);
    exp::RunOptions opts = bench::run_options(cfg);
    opts.run_fcp = false;
    opts.run_mrc = false;
    opts.storm.budget_ops = 0;
    const exp::RecoverableResults free_run =
        exp::run_recoverable(*ctx, scenarios, opts);
    add_run_rows(table, ctx->name + " (unthrottled)", free_run);
    opts.storm.budget_ops = 400;
    const exp::RecoverableResults throttled =
        exp::run_recoverable(*ctx, scenarios, opts);
    add_run_rows(table, ctx->name + " (budget 400)", throttled);
    RTR_EXPECT_MSG(free_run.storm_dist_digest == throttled.storm_dist_digest,
                   "budget changed the converged trees");
  }

  // Scale tier: the storm engine driven directly over a generated
  // continental topology -- per-plan work units merged in plan order.
  graph::ScaleSpec spec;
  spec.nodes = static_cast<std::size_t>(nodes);
  spec.seed = cfg.seed;
  const graph::Graph g = graph::make_scale_topology(spec);
  const std::size_t n = g.num_nodes();
  obs::Registry::global().counter("rtr.bench.storm.scale_nodes").add(n);
  obs::Registry::global()
      .counter("rtr.bench.storm.scale_links")
      .add(g.num_links());

  storm::StormOptions sopts = cfg.storm;
  double side = 1.0;  // grid side length of the generated embedding
  while (side * side < static_cast<double>(n)) side += 1.0;
  sopts.extent = side * spec.spacing;
  sopts.radius = spec.spacing * 6.0;
  sopts.growth = spec.spacing * 0.5;
  sopts.speed = spec.spacing * 2.0;
  sopts.budget_ops = 5000;

  constexpr std::size_t kPlans = 8;
  constexpr std::size_t kSources = 8;
  std::vector<NodeId> sources(kSources);
  for (std::size_t k = 0; k < kSources; ++k) {
    sources[k] = static_cast<NodeId>(k * n / kSources);
  }
  const spf::BaseTreeStore store(g, spf::SpfAlgorithm::kDijkstra);
  const fail::FailureSet no_base(g);
  std::vector<exp::RecoverableResults> plans(kPlans);
  common::parallel_for(kPlans, cfg.threads, [&](std::size_t p) {
    const std::uint64_t stream =
        fault::FaultPlan::stream_seed(sopts.seed, p);
    const storm::StormSpec sp = storm::make_storm_spec(sopts, stream);
    const storm::StormTimeline tl =
        storm::compile_timeline(sp, g, stream, &no_base);
    storm::StormEngineOptions eopts;
    eopts.budget_ops = sopts.budget_ops;
    const storm::StormRunResult r =
        storm::run_storm(g, store, tl, &no_base, sources, eopts);
    exp::RecoverableResults& out = plans[p];
    out.storm_ticks = r.storm_ticks;
    out.storm_drain_ticks = r.drain_ticks;
    out.storm_delta_links = tl.total_links_down() + tl.total_links_up();
    out.storm_delta_nodes = tl.total_nodes_down();
    out.storm_shadowed_flaps = tl.total_shadowed_flaps();
    out.storm_repairs = r.total_repairs;
    out.storm_fallbacks = r.total_fallbacks;
    out.storm_repair_ops = r.total_repair_ops;
    out.storm_budget_stalls = r.total_budget_stalls;
    out.storm_unreachable_pairs = r.unreachable_pairs;
    out.storm_dist_digest = r.dist_digest;
  });
  exp::RecoverableResults scale_total;
  for (const exp::RecoverableResults& p : plans) {
    scale_total.storm_ticks += p.storm_ticks;
    scale_total.storm_drain_ticks += p.storm_drain_ticks;
    scale_total.storm_delta_links += p.storm_delta_links;
    scale_total.storm_delta_nodes += p.storm_delta_nodes;
    scale_total.storm_shadowed_flaps += p.storm_shadowed_flaps;
    scale_total.storm_repairs += p.storm_repairs;
    scale_total.storm_fallbacks += p.storm_fallbacks;
    scale_total.storm_repair_ops += p.storm_repair_ops;
    scale_total.storm_budget_stalls += p.storm_budget_stalls;
    scale_total.storm_unreachable_pairs += p.storm_unreachable_pairs;
    scale_total.storm_dist_digest ^= p.storm_dist_digest;
  }
  add_run_rows(table, "scale_gen " + std::to_string(n), scale_total);

  table.print(std::cout);
  std::cout << "\nAll rows above are pure functions of the storm spec and "
               "seed; unthrottled and budgeted passes converge to the same "
               "digests.\n";
  std::cerr << "(peak RSS " << obs::peak_rss_kb() << " KiB)\n";
  return 0;
}
