// Regenerates Table III: recovery rate, optimal recovery rate, maximum
// stretch and maximum computational overhead of RTR, FCP and MRC over
// the recoverable test cases of every Table II topology.
//
// Printed under both link-cut rules (see DESIGN.md): the endpoint rule
// best reproduces RTR's headline numbers; the geometric rule best
// reproduces MRC's collapse ("a routing path and its backup paths may
// fail simultaneously").
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

namespace {

void run_rule(exp::BenchConfig cfg, fail::LinkCutRule rule,
              const char* label) {
  cfg.cut_rule = rule;
  stats::TextTable table(
      {"Topology", "Rec% RTR", "Rec% FCP", "Rec% MRC", "Opt% RTR",
       "Opt% FCP", "Opt% MRC", "MaxStr RTR", "MaxStr FCP", "MaxStr MRC",
       "MaxCalc RTR", "MaxCalc FCP"});

  std::size_t cases = 0;
  std::size_t rtr_rec = 0, fcp_rec = 0, mrc_rec = 0;
  std::size_t rtr_opt = 0, fcp_opt = 0, mrc_opt = 0;
  double rtr_str = 0, fcp_str = 0, mrc_str = 0, rtr_cal = 0, fcp_cal = 0;

  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    const exp::RecoverableResults r =
        exp::run_recoverable(ctx, scenarios, bench::run_options(cfg));
    const double n = static_cast<double>(r.cases);
    const auto max_of = [](const std::vector<double>& v) {
      return v.empty() ? 0.0 : stats::Summary::of(v).max;
    };
    table.add_row({ctx.name,
                   stats::fmt(100.0 * r.rtr_recovered / n),
                   stats::fmt(100.0 * r.fcp_recovered / n),
                   stats::fmt(100.0 * r.mrc_recovered / n),
                   stats::fmt(100.0 * r.rtr_optimal / n),
                   stats::fmt(100.0 * r.fcp_optimal / n),
                   stats::fmt(100.0 * r.mrc_optimal / n),
                   stats::fmt(max_of(r.rtr_stretch)),
                   stats::fmt(max_of(r.fcp_stretch)),
                   stats::fmt(max_of(r.mrc_stretch)),
                   stats::fmt(max_of(r.rtr_calcs), 0),
                   stats::fmt(max_of(r.fcp_calcs), 0)});
    cases += r.cases;
    rtr_rec += r.rtr_recovered;
    fcp_rec += r.fcp_recovered;
    mrc_rec += r.mrc_recovered;
    rtr_opt += r.rtr_optimal;
    fcp_opt += r.fcp_optimal;
    mrc_opt += r.mrc_optimal;
    rtr_str = std::max(rtr_str, max_of(r.rtr_stretch));
    fcp_str = std::max(fcp_str, max_of(r.fcp_stretch));
    mrc_str = std::max(mrc_str, max_of(r.mrc_stretch));
    rtr_cal = std::max(rtr_cal, max_of(r.rtr_calcs));
    fcp_cal = std::max(fcp_cal, max_of(r.fcp_calcs));
  }
  const double n = static_cast<double>(cases);
  table.add_row({"Overall", stats::fmt(100.0 * rtr_rec / n),
                 stats::fmt(100.0 * fcp_rec / n),
                 stats::fmt(100.0 * mrc_rec / n),
                 stats::fmt(100.0 * rtr_opt / n),
                 stats::fmt(100.0 * fcp_opt / n),
                 stats::fmt(100.0 * mrc_opt / n), stats::fmt(rtr_str),
                 stats::fmt(fcp_str), stats::fmt(mrc_str),
                 stats::fmt(rtr_cal, 0), stats::fmt(fcp_cal, 0)});
  std::cout << "-- link-cut rule: " << label << " --\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Table III: performance of RTR, FCP and MRC in recoverable test "
      "cases",
      cfg);
  run_rule(cfg, fail::LinkCutRule::kEndpointsOnly,
           "endpoint (paper's data)");
  run_rule(cfg, fail::LinkCutRule::kGeometric, "geometric (stated model)");
  std::cout << "Paper reference (real Rocketfuel maps): RTR recovery "
               "97.7-99.2% with optimal == recovery and stretch exactly "
               "1; FCP recovery 100% with optimal 92.8-97.9% and stretch "
               "up to 5.0; MRC recovery 15.5-63.9% with optimal "
               "8.2-42.1%.\n";
  return 0;
}
