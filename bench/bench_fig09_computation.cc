// Regenerates Fig. 9: cumulative distribution of the number of shortest
// path calculations per recoverable test case.  RTR computes exactly
// once; FCP recomputes at every node where the packet encounters an
// unrecorded failure.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 9: CDF of the computational overhead (SP calculations) in "
      "recoverable test cases",
      cfg);

  const std::vector<double> grid = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  std::vector<std::string> header = {"Series"};
  for (double g : grid) header.push_back("<=" + stats::fmt(g, 0));
  header.push_back("max");
  stats::TextTable table(header);

  exp::RunOptions opts = bench::run_options(cfg);
  opts.run_mrc = false;
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    const exp::RecoverableResults r =
        exp::run_recoverable(ctx, scenarios, opts);
    for (const auto& [name, samples] :
         {std::pair<std::string, const std::vector<double>*>{
              "RTR (" + ctx.name + ")", &r.rtr_calcs},
          {"FCP (" + ctx.name + ")", &r.fcp_calcs}}) {
      const stats::Cdf cdf(*samples);
      std::vector<std::string> row = {name};
      for (double g : grid) {
        row.push_back(stats::fmt_pct(cdf.fraction_at_or_below(g)));
      }
      row.push_back(stats::fmt(cdf.max(), 0));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: RTR always exactly 1 calculation; FCP "
               "up to 5-10 per topology (Table III max column).\n";
  return 0;
}
