// Continental-scale tier: full and batch-repaired SPF over a generated
// 10^5-node (default; --nodes for the 10^6 tier) topology, exercising
// the CSR graph core and the delta-compressed base tree store at a
// scale the Rocketfuel surrogates cannot reach.
//
// Phase A runs full Dijkstra from spread sources; phase B applies area
// failures as batch-repair deltas to the shared compressed base trees.
// Everything on stdout is a pure function of (--nodes, seed): op
// digests, storage sizes, repair-path tallies -- bit-identical across
// thread counts, like every other bench.  Peak RSS is volatile and
// goes to stderr and the metrics timing block only.
#include <array>

#include "bench_common.h"
#include "geom/point.h"
#include "graph/gen/scale_gen.h"
#include "spf/batch_repair.h"
#include "spf/shortest_path.h"
#include "stats/table.h"

using namespace rtr;

namespace {

constexpr std::size_t kSources = 32;    // phase A full-SPF roots
constexpr std::size_t kScenarios = 64;  // phase B area failures
constexpr std::size_t kRepairsPerScenario = 4;

struct SourceSummary {
  std::size_t reachable = 0;
  double dist_sum = 0.0;
};

struct ScenarioSummary {
  std::size_t failed_nodes = 0;
  std::size_t repairs = 0;
  std::array<std::size_t, 3> by_path{};  // shared / repaired / fallback
  std::size_t touched = 0;
  double dist_sum = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  const exp::BenchConfig cfg = bench::consume_engine_flags(args);
  unsigned long long nodes = 100000;
  for (std::size_t i = 1; i < args.size();) {
    std::string value;
    std::size_t consumed = 0;
    if (bench::detail::match_value_flag(args, i, "--nodes", &value,
                                        &consumed)) {
      if (!bench::detail::parse_u64(value, &nodes) || nodes == 0) {
        bench::detail::bad_flag_value("--nodes", value);
      }
      i += consumed;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--nodes N] [--threads N] [--metrics-out FILE]\n"
                << "unrecognised argument: " << args[i] << '\n';
      return 2;
    }
  }
  bench::print_header("Scale tier: full + batch-repaired SPF on a "
                      "generated continental topology",
                      cfg);

  graph::ScaleSpec spec;
  spec.nodes = static_cast<std::size_t>(nodes);
  spec.seed = cfg.seed;
  const graph::Graph g = graph::make_scale_topology(spec);
  const std::size_t n = g.num_nodes();
  RTR_EXPECT(n > kSources);

  // Workload sizes are stable metrics so the perf gate pins them.
  obs::Registry::global().counter("rtr.bench.scale.nodes").add(n);
  obs::Registry::global().counter("rtr.bench.scale.links").add(g.num_links());

  // Phase A: full Dijkstra from sources spread across the id space,
  // merged in source order so the digest is schedule-independent.
  std::vector<NodeId> sources(kSources);
  for (std::size_t k = 0; k < kSources; ++k) {
    sources[k] = static_cast<NodeId>(k * n / kSources);
  }
  std::vector<SourceSummary> full(kSources);
  common::parallel_for(kSources, cfg.threads, [&](std::size_t k) {
    const spf::SptResult r = spf::dijkstra_from(g, sources[k]);
    for (std::size_t v = 0; v < n; ++v) {
      if (r.dist[v] >= kInfCost) continue;
      full[k].reachable += 1;
      full[k].dist_sum += r.dist[v];
    }
  });
  SourceSummary full_total;
  for (const SourceSummary& s : full) {
    full_total.reachable += s.reachable;
    full_total.dist_sum += s.dist_sum;
  }

  // Phase B: area failures (all nodes within a disc) repaired from the
  // shared compressed base trees.  Scenario geometry is drawn from one
  // sequential stream before the fan-out, so it never depends on
  // scheduling; per-scenario results merge in scenario order.
  const spf::BaseTreeStore store(g, spf::SpfAlgorithm::kDijkstra);
  struct Area {
    geom::Point center;
    double radius = 0.0;
  };
  std::vector<Area> areas(kScenarios);
  Rng rng(cfg.seed + 0x5ca1eULL);
  for (Area& a : areas) {
    a.center = g.position(static_cast<NodeId>(rng.index(n)));
    a.radius = spec.spacing * rng.uniform_real(2.0, 8.0);
  }
  std::vector<ScenarioSummary> scen(kScenarios);
  common::parallel_for(kScenarios, cfg.threads, [&](std::size_t s) {
    std::vector<char> node_failed(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
      if (geom::distance2(g.position(static_cast<NodeId>(v)),
                          areas[s].center) <
          areas[s].radius * areas[s].radius) {
        node_failed[v] = 1;
        scen[s].failed_nodes += 1;
      }
    }
    const graph::Masks masks{&node_failed, nullptr};
    for (std::size_t j = 0; j < kRepairsPerScenario; ++j) {
      const NodeId src = sources[(s + j * 7) % kSources];
      if (!masks.node_ok(src)) continue;
      spf::BatchRepairStats stats;
      const auto repaired =
          spf::repair_spt(g, store.from(src), masks,
                          spf::SpfAlgorithm::kDijkstra, {}, &stats);
      scen[s].repairs += 1;
      scen[s].by_path[static_cast<std::size_t>(stats.path)] += 1;
      scen[s].touched += stats.touched;
      for (std::size_t v = 0; v < n; ++v) {
        if (repaired->dist[v] < kInfCost) scen[s].dist_sum += repaired->dist[v];
      }
    }
  });
  ScenarioSummary scen_total;
  for (const ScenarioSummary& s : scen) {
    scen_total.failed_nodes += s.failed_nodes;
    scen_total.repairs += s.repairs;
    for (std::size_t p = 0; p < 3; ++p) scen_total.by_path[p] += s.by_path[p];
    scen_total.touched += s.touched;
    scen_total.dist_sum += s.dist_sum;
  }

  stats::TextTable table({"Metric", "Value"});
  table.add_row({"nodes", std::to_string(n)});
  table.add_row({"links", std::to_string(g.num_links())});
  table.add_row({"graph storage bytes", std::to_string(g.storage_bytes())});
  table.add_row({"full SPF sources", std::to_string(kSources)});
  table.add_row({"full SPF reachable sum",
                 std::to_string(full_total.reachable)});
  table.add_row({"full SPF dist digest",
                 stats::fmt(full_total.dist_sum, 0)});
  table.add_row({"repair scenarios", std::to_string(kScenarios)});
  table.add_row({"failed nodes (all scenarios)",
                 std::to_string(scen_total.failed_nodes)});
  table.add_row({"repairs run", std::to_string(scen_total.repairs)});
  table.add_row({"repairs shared/repaired/fallback",
                 std::to_string(scen_total.by_path[0]) + "/" +
                     std::to_string(scen_total.by_path[1]) + "/" +
                     std::to_string(scen_total.by_path[2])});
  table.add_row({"repair touched nodes", std::to_string(scen_total.touched)});
  table.add_row({"repaired dist digest",
                 stats::fmt(scen_total.dist_sum, 0)});
  table.add_row({"base trees computed",
                 std::to_string(store.trees_computed())});
  table.add_row({"compressed tree bytes",
                 std::to_string(store.compressed_bytes())});
  table.print(std::cout);
  std::cout << "\nAll rows above are pure functions of (--nodes, seed); "
               "memory and wall clock are reported on stderr and in the "
               "metrics timing block.\n";
  std::cerr << "(peak RSS " << obs::peak_rss_kb() << " KiB)\n";
  return 0;
}
