// Regenerates Table IV: average and maximum wasted computation and
// wasted transmission of RTR and FCP on irrecoverable test cases, plus
// the headline savings percentages of the abstract.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Table IV: wasted computation and wasted transmission in "
      "irrecoverable test cases",
      cfg);

  stats::TextTable table({"Topology", "AvgComp RTR", "AvgComp FCP",
                          "MaxComp RTR", "MaxComp FCP", "AvgTx RTR",
                          "AvgTx FCP", "MaxTx RTR", "MaxTx FCP"});
  std::vector<double> all_rtr_comp, all_fcp_comp, all_rtr_tx, all_fcp_tx;

  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, 0, cfg.cases);
    const exp::IrrecoverableResults r =
        exp::run_irrecoverable(ctx, scenarios, bench::run_options(cfg));
    const stats::Summary rc = stats::Summary::of(r.rtr_wasted_comp);
    const stats::Summary fc = stats::Summary::of(r.fcp_wasted_comp);
    const stats::Summary rt = stats::Summary::of(r.rtr_wasted_trans);
    const stats::Summary ft = stats::Summary::of(r.fcp_wasted_trans);
    table.add_row({ctx.name, stats::fmt(rc.mean), stats::fmt(fc.mean),
                   stats::fmt(rc.max, 0), stats::fmt(fc.max, 0),
                   stats::fmt(rt.mean), stats::fmt(ft.mean),
                   stats::fmt(rt.max, 0), stats::fmt(ft.max, 0)});
    const auto append = [](std::vector<double>& acc,
                           const std::vector<double>& v) {
      acc.insert(acc.end(), v.begin(), v.end());
    };
    append(all_rtr_comp, r.rtr_wasted_comp);
    append(all_fcp_comp, r.fcp_wasted_comp);
    append(all_rtr_tx, r.rtr_wasted_trans);
    append(all_fcp_tx, r.fcp_wasted_trans);
  }
  const stats::Summary rc = stats::Summary::of(all_rtr_comp);
  const stats::Summary fc = stats::Summary::of(all_fcp_comp);
  const stats::Summary rt = stats::Summary::of(all_rtr_tx);
  const stats::Summary ft = stats::Summary::of(all_fcp_tx);
  table.add_row({"Overall", stats::fmt(rc.mean), stats::fmt(fc.mean),
                 stats::fmt(rc.max, 0), stats::fmt(fc.max, 0),
                 stats::fmt(rt.mean), stats::fmt(ft.mean),
                 stats::fmt(rt.max, 0), stats::fmt(ft.max, 0)});
  table.print(std::cout);

  const double comp_saving = 100.0 * (1.0 - rc.mean / fc.mean);
  const double tx_saving = 100.0 * (1.0 - rt.mean / ft.mean);
  std::cout << "\nRTR saves " << stats::fmt(comp_saving)
            << "% of computation and " << stats::fmt(tx_saving)
            << "% of transmission for irrecoverable failed routing "
               "paths.\nPaper reference: 83.1% computation and 75.6% "
               "transmission saved; overall wasted computation 1 vs 5.9 "
               "and wasted transmission 932.5 vs 3822.8 bytes.\n";
  return 0;
}
