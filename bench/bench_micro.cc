// Micro-benchmarks (google-benchmark) for the pieces whose cost the
// paper argues about: shortest-path recomputation (full Dijkstra vs the
// incremental SPT of Section III-D), the per-link crossing-set
// precomputation of Section III-C, the phase-1 traversal itself, and
// the header codec.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/rng.h"
#include "core/phase1.h"
#include "failure/scenario.h"
#include "graph/crossings.h"
#include "graph/gen/isp_gen.h"
#include "net/codec.h"
#include "spf/incremental.h"
#include "spf/routing_table.h"
#include "spf/shortest_path.h"

using namespace rtr;

namespace {

const graph::Graph& topo(const std::string& name) {
  // lint:allow(mutable-static) — single-threaded bench setup memo
  static std::map<std::string, graph::Graph> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, graph::make_isp_topology(
                                 graph::spec_by_name(name)))
             .first;
  }
  return it->second;
}

std::vector<LinkId> sample_links(const graph::Graph& g, std::size_t k,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LinkId> out;
  std::vector<char> used(g.num_links(), 0);
  while (out.size() < k) {
    const LinkId l = static_cast<LinkId>(rng.index(g.num_links()));
    if (!used[l]) {
      used[l] = 1;
      out.push_back(l);
    }
  }
  return out;
}

void BM_FullDijkstraAfterRemovals(benchmark::State& state) {
  const graph::Graph& g = topo("AS7018");
  const auto removed = sample_links(g, state.range(0), 7);
  std::vector<char> mask(g.num_links(), 0);
  for (LinkId l : removed) mask[l] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spf::dijkstra_from(g, 0, {nullptr, &mask}));
  }
}
BENCHMARK(BM_FullDijkstraAfterRemovals)->Arg(4)->Arg(16)->Arg(64);

void BM_IncrementalSptAfterRemovals(benchmark::State& state) {
  const graph::Graph& g = topo("AS7018");
  const auto removed =
      sample_links(g, static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    state.PauseTiming();
    spf::IncrementalSpt inc(g, 0);  // tree build excluded from timing
    state.ResumeTiming();
    inc.remove_links(removed);
    benchmark::DoNotOptimize(inc.dist(g.num_nodes() - 1));
  }
}
BENCHMARK(BM_IncrementalSptAfterRemovals)->Arg(4)->Arg(16)->Arg(64);

void BM_CrossingIndexBuild(benchmark::State& state) {
  const graph::Graph& g = topo(state.range(0) == 0 ? "AS1239" : "AS3549");
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CrossingIndex(g));
  }
}
BENCHMARK(BM_CrossingIndexBuild)->Arg(0)->Arg(1);

void BM_RoutingTableBuild(benchmark::State& state) {
  const graph::Graph& g = topo("AS7018");
  for (auto _ : state) {
    benchmark::DoNotOptimize(spf::RoutingTable(g));
  }
}
BENCHMARK(BM_RoutingTableBuild);

void BM_Phase1Traversal(benchmark::State& state) {
  const graph::Graph& g = topo("AS209");
  const graph::CrossingIndex idx(g);
  Rng rng(42);
  const fail::ScenarioConfig cfg;
  // A fixed failure with a valid initiator.
  fail::FailureSet fs(g);
  NodeId initiator = kNoNode;
  LinkId dead = kNoLink;
  while (initiator == kNoNode) {
    fs = fail::FailureSet(g, fail::random_circle_area(cfg, rng),
                          fail::LinkCutRule::kEndpointsOnly);
    if (fs.empty()) continue;
    for (NodeId n = 0; n < g.node_count(); ++n) {
      if (fs.node_failed(n)) continue;
      const auto obs = fs.observed_failed_links(g, n);
      if (!obs.empty()) {
        initiator = n;
        dead = obs.front();
        break;
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_phase1(g, idx, fs, initiator, dead));
  }
}
BENCHMARK(BM_Phase1Traversal);

void BM_HeaderCodecRoundTrip(benchmark::State& state) {
  net::RtrHeader h;
  h.mode = net::Mode::kCollect;
  h.rec_init = 6;
  for (LinkId l = 0; l < static_cast<LinkId>(state.range(0)); ++l) {
    h.add_failed(l);
  }
  h.cross_links = {1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode(net::encode(h)));
  }
}
BENCHMARK(BM_HeaderCodecRoundTrip)->Arg(4)->Arg(32);

}  // namespace

// Accepts --threads N and --metrics-out FILE like every other bench
// binary so scripted sweeps can pass a uniform flag set; the micro
// kernels themselves are single-threaded, so the thread count is parsed
// and ignored while --metrics-out still captures the kernels' op
// counters.  Remaining flags go to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bench::consume_engine_flags(args);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
