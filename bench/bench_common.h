// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every bench prints a provenance line (case counts, seed, link-cut
// rule) followed by plain-text tables that mirror the corresponding
// paper artifact.  Absolute numbers depend on the surrogate topologies
// (see DESIGN.md); the *shape* is the reproduction target recorded in
// EXPERIMENTS.md.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "exp/bench_config.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "graph/gen/isp_gen.h"

namespace rtr::bench {

/// Environment config plus command-line overrides.  Every bench accepts
///   --threads N   worker threads for the scenario fan-out
///                 (0 = all hardware threads, 1 = serial; results are
///                 bit-identical either way -- see exp::RunOptions)
/// Unknown flags abort with a usage message so typos don't silently run
/// a multi-minute workload with default settings.
inline exp::BenchConfig config_from(int argc, char** argv) {
  exp::BenchConfig cfg = exp::BenchConfig::from_env();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(std::string("--threads=").size());
    } else {
      std::cerr << "usage: " << argv[0] << " [--threads N]\n"
                << "unrecognised argument: " << arg << '\n';
      std::exit(2);
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') {
      std::cerr << "invalid --threads value: " << value << '\n';
      std::exit(2);
    }
    cfg.threads = static_cast<std::size_t>(n);
  }
  return cfg;
}

/// RunOptions seeded with the config's engine knobs; benches tweak the
/// per-figure flags (run_mrc / run_fcp / ablations) on top.
inline exp::RunOptions run_options(const exp::BenchConfig& cfg) {
  exp::RunOptions opts;
  opts.threads = cfg.threads;
  return opts;
}

/// Builds contexts for the Table II topologies (and optionally the two
/// extra ASes that appear in Figs. 11-13).  unique_ptr keeps each
/// context at a stable address (TopologyContext is immovable).
inline std::vector<std::unique_ptr<exp::TopologyContext>> make_contexts(
    bool extended) {
  std::vector<std::unique_ptr<exp::TopologyContext>> out;
  for (const graph::IspSpec& spec : graph::rocketfuel_specs()) {
    if (!extended && !spec.core) continue;
    out.push_back(std::make_unique<exp::TopologyContext>(
        spec.name, graph::make_isp_topology(spec)));
  }
  return out;
}

/// Generates the paper's workload for one topology: cfg.cases
/// recoverable plus cfg.cases irrecoverable test cases (either budget
/// can be zeroed by the caller through the arguments).
inline std::vector<exp::Scenario> make_scenarios(
    const exp::TopologyContext& ctx, const exp::BenchConfig& cfg,
    std::size_t recoverable, std::size_t irrecoverable) {
  exp::CaseBudget budget;
  budget.recoverable = recoverable;
  budget.irrecoverable = irrecoverable;
  // Per-topology seed: deterministic but distinct across topologies.
  std::uint64_t seed = cfg.seed;
  for (char c : ctx.name) seed = seed * 131 + static_cast<unsigned char>(c);
  return exp::generate_scenarios(ctx, fail::ScenarioConfig{}, budget, seed,
                                 cfg.cut_rule);
}

inline void print_header(const std::string& title,
                         const exp::BenchConfig& cfg) {
  std::cout << "==== " << title << " ====\n"
            << "(" << cfg.describe() << ")\n\n";
}

}  // namespace rtr::bench
