// Shared plumbing for the per-table/per-figure bench binaries.
//
// Every bench prints plain-text tables on stdout that mirror the
// corresponding paper artifact, and a provenance line (case counts,
// seed, link-cut rule, thread count) on *stderr* so stdout stays
// byte-comparable between runs -- the CI bench smoke diffs full stdout
// across thread counts.  Absolute numbers depend on the surrogate
// topologies (see DESIGN.md); the *shape* is the reproduction target
// recorded in EXPERIMENTS.md.
//
// Observability: every bench accepts `--metrics-out FILE` (or
// RTR_METRICS_OUT) and emits the rtr::obs registry as one
// schema-versioned JSON document at process exit; the CI perf gate
// (tools/check_bench_regression.py) consumes it.  Emission never writes
// to stdout, so table output is bit-identical with metrics on or off.
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "exp/bench_config.h"
#include "exp/cases.h"
#include "exp/context.h"
#include "exp/runners.h"
#include "graph/gen/isp_gen.h"
#include "ledger/journal.h"
#include "obs/emit.h"
#include "obs/metrics.h"

namespace rtr::bench {

namespace detail {

/// Points the process-wide obs::Emitter at cfg.metrics_out with the
/// bench's provenance.  The final snapshot is written by the Emitter's
/// (single, idempotently registered) atexit flush; long-running
/// surfaces may additionally call obs::Emitter::global().flush() for
/// periodic snapshots -- each flush rewrites the whole file.
inline void configure_metrics_emitter(const exp::BenchConfig& cfg,
                                      const std::string& bench_name) {
  obs::RunInfo run;
  run.bench = bench_name;
  run.config = {
      {"cases", std::to_string(cfg.cases)},
      {"cut_rule", cfg.cut_rule == fail::LinkCutRule::kEndpointsOnly
                       ? "endpoint"
                       : "geometric"},
      {"fig11_areas", std::to_string(cfg.fig11_areas)},
      {"seed", std::to_string(cfg.seed)},
      {"spf_engine", cfg.spf_engine == spf::SpfEngine::kIncremental
                         ? "incremental"
                         : "full"},
  };
  // Fault and storm knobs only appear when armed, so disarmed documents
  // stay byte-identical to those of a build without either layer.
  if (cfg.fault.any()) {
    run.config.emplace_back("fault", cfg.fault.describe());
  }
  if (cfg.storm.any()) {
    run.config.emplace_back("storm", cfg.storm.describe());
  }
  obs::EmitOptions opts;
  opts.include_volatile = !cfg.metrics_deterministic;
  opts.threads = common::resolve_thread_count(cfg.threads);
  obs::Emitter::global().configure(cfg.metrics_out, std::move(run), opts);
  obs::Emitter::global().register_atexit();
}

/// Parses "--flag VALUE" / "--flag=VALUE" at args[i]; on a match stores
/// the value and the number of argv slots consumed (1 or 2).
inline bool match_value_flag(const std::vector<char*>& args, std::size_t i,
                             const char* flag, std::string* value,
                             std::size_t* consumed) {
  const std::string arg = args[i];
  const std::string prefix = std::string(flag) + "=";
  if (arg == flag && i + 1 < args.size()) {
    *value = args[i + 1];
    *consumed = 2;
    return true;
  }
  if (arg.starts_with(prefix)) {
    *value = arg.substr(prefix.size());
    *consumed = 1;
    return true;
  }
  return false;
}

inline bool parse_f64(const std::string& value, double* out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

inline bool parse_u64(const std::string& value, unsigned long long* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

[[noreturn]] inline void bad_flag_value(const char* flag,
                                        const std::string& value) {
  std::cerr << "invalid " << flag << " value: " << value << '\n';
  std::exit(2);
}

}  // namespace detail

/// Consumes the engine flags every bench accepts
///   --threads N        worker threads for the scenario fan-out
///                      (0 = all hardware threads, 1 = serial; results
///                      are bit-identical either way)
///   --metrics-out FILE write the obs metrics JSON to FILE at exit
///   --fault-* VALUE    fault-injection knobs overriding RTR_FAULT_*:
///                      loss, corrupt, dup, flap (probabilities),
///                      detect-ms, dyn-window-ms, backoff-ms (ms),
///                      dyn-links, retry-cap, seed (integers)
///   --storm-* VALUE    rolling-disaster knobs overriding RTR_STORM_*:
///                      tick-ms, radius, growth, speed, flap (reals),
///                      ticks, cells, budget, seed (integers),
///                      waypoints (CSV track file; see storm/storm.h)
///   --ledger FILE      crash-durable scenario journal overriding
///                      RTR_LEDGER; a restart with the same config and
///                      journal resumes the sweep where it died
/// from `args` (argv[0] expected at index 0 and left in place); other
/// arguments are kept in order for the caller to handle.  Also
/// registers the at-exit metrics emitter, so every bench routed through
/// here gets `--metrics-out` behaviour with no per-binary code.
inline exp::BenchConfig consume_engine_flags(std::vector<char*>& args) {
  exp::BenchConfig cfg = exp::BenchConfig::from_env();
  std::string bench_name = "bench";
  struct FaultF64Flag {
    const char* flag;
    double* dst;
  };
  const FaultF64Flag fault_f64_flags[] = {
      {"--fault-loss", &cfg.fault.loss_prob},
      {"--fault-corrupt", &cfg.fault.corrupt_prob},
      {"--fault-dup", &cfg.fault.duplicate_prob},
      {"--fault-detect-ms", &cfg.fault.max_detection_delay_ms},
      {"--fault-dyn-window-ms", &cfg.fault.dynamic_window_ms},
      {"--fault-flap", &cfg.fault.flap_prob},
      {"--fault-backoff-ms", &cfg.fault.backoff_base_ms},
      {"--storm-tick-ms", &cfg.storm.tick_ms},
      {"--storm-radius", &cfg.storm.radius},
      {"--storm-growth", &cfg.storm.growth},
      {"--storm-speed", &cfg.storm.speed},
      {"--storm-flap", &cfg.storm.flap_prob},
  };
  struct U64Flag {
    const char* flag;
    std::uint64_t* dst;  ///< nullptr: value lands in a size_t below
    std::size_t* dst_sz;
  };
  const U64Flag u64_flags[] = {
      {"--storm-ticks", nullptr, &cfg.storm.ticks},
      {"--storm-cells", nullptr, &cfg.storm.cells},
      {"--storm-budget", nullptr, &cfg.storm.budget_ops},
      {"--storm-seed", &cfg.storm.seed, nullptr},
  };
  std::vector<char*> rest;
  std::size_t i = 0;
  if (!args.empty()) {
    const char* slash = std::strrchr(args[0], '/');
    bench_name = slash != nullptr ? slash + 1 : args[0];
    rest.push_back(args[0]);
    i = 1;
  }
  while (i < args.size()) {
    std::string value;
    std::size_t consumed = 0;
    unsigned long long n = 0;
    if (detail::match_value_flag(args, i, "--threads", &value, &consumed)) {
      if (!detail::parse_u64(value, &n)) {
        detail::bad_flag_value("--threads", value);
      }
      cfg.threads = static_cast<std::size_t>(n);
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--metrics-out", &value,
                                        &consumed)) {
      cfg.metrics_out = value;
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--storm-waypoints",
                                        &value, &consumed)) {
      cfg.storm.waypoint_file = value;
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--ledger", &value,
                                        &consumed)) {
      cfg.ledger_path = value;
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--fault-dyn-links",
                                        &value, &consumed)) {
      if (!detail::parse_u64(value, &n)) {
        detail::bad_flag_value("--fault-dyn-links", value);
      }
      cfg.fault.dynamic_links = static_cast<std::size_t>(n);
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--fault-retry-cap",
                                        &value, &consumed)) {
      if (!detail::parse_u64(value, &n)) {
        detail::bad_flag_value("--fault-retry-cap", value);
      }
      cfg.fault.retry_cap = static_cast<std::size_t>(n);
      i += consumed;
    } else if (detail::match_value_flag(args, i, "--fault-seed", &value,
                                        &consumed)) {
      if (!detail::parse_u64(value, &n)) {
        detail::bad_flag_value("--fault-seed", value);
      }
      cfg.fault.seed = n;
      i += consumed;
    } else {
      bool matched = false;
      for (const FaultF64Flag& f : fault_f64_flags) {
        if (detail::match_value_flag(args, i, f.flag, &value, &consumed)) {
          if (!detail::parse_f64(value, f.dst)) {
            detail::bad_flag_value(f.flag, value);
          }
          i += consumed;
          matched = true;
          break;
        }
      }
      for (const U64Flag& f : u64_flags) {
        if (matched) break;
        if (detail::match_value_flag(args, i, f.flag, &value, &consumed)) {
          if (!detail::parse_u64(value, &n)) {
            detail::bad_flag_value(f.flag, value);
          }
          if (f.dst != nullptr) *f.dst = n;
          if (f.dst_sz != nullptr) *f.dst_sz = static_cast<std::size_t>(n);
          i += consumed;
          matched = true;
          break;
        }
      }
      if (!matched) {
        rest.push_back(args[i]);
        ++i;
      }
    }
  }
  args = rest;
  detail::configure_metrics_emitter(cfg, bench_name);
  return cfg;
}

/// Environment config plus command-line overrides; unknown flags abort
/// with a usage message so typos don't silently run a multi-minute
/// workload with default settings.
inline exp::BenchConfig config_from(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  exp::BenchConfig cfg = consume_engine_flags(args);
  if (args.size() > 1) {
    std::cerr << "usage: " << argv[0]
              << " [--threads N] [--metrics-out FILE] [--ledger FILE]"
                 " [--fault-KNOB VALUE ...] [--storm-KNOB VALUE ...]\n"
              << "unrecognised argument: " << args[1] << '\n';
    std::exit(2);
  }
  return cfg;
}

/// The process-wide scenario journal (nullptr when cfg.ledger_path is
/// empty).  Benches call run_options() once per sweep, but a journal
/// file tolerates exactly one writer per process: the first call opens
/// (and, on restart, recovers) it, later calls share it.
inline std::shared_ptr<ledger::Journal> shared_journal(
    const exp::BenchConfig& cfg) {
  if (cfg.ledger_path.empty()) return nullptr;
  // lint:allow(mutable-static) — one journal writer per process
  static const std::shared_ptr<ledger::Journal> journal =
      std::make_shared<ledger::Journal>(cfg.ledger_path, cfg.fingerprint());
  return journal;
}

/// RunOptions seeded with the config's engine knobs; benches tweak the
/// per-figure flags (run_mrc / run_fcp / ablations) on top.
inline exp::RunOptions run_options(const exp::BenchConfig& cfg) {
  exp::RunOptions opts;
  opts.threads = cfg.threads;
  opts.spf_engine = cfg.spf_engine;
  opts.fault = cfg.fault;
  opts.storm = cfg.storm;
  opts.journal = shared_journal(cfg);
  return opts;
}

/// Builds contexts for the Table II topologies (and optionally the two
/// extra ASes that appear in Figs. 11-13).  unique_ptr keeps each
/// context at a stable address (TopologyContext is immovable).
inline std::vector<std::unique_ptr<exp::TopologyContext>> make_contexts(
    bool extended) {
  std::vector<std::unique_ptr<exp::TopologyContext>> out;
  for (const graph::IspSpec& spec : graph::rocketfuel_specs()) {
    if (!extended && !spec.core) continue;
    out.push_back(std::make_unique<exp::TopologyContext>(
        spec.name, graph::make_isp_topology(spec)));
  }
  return out;
}

/// Generates the paper's workload for one topology: cfg.cases
/// recoverable plus cfg.cases irrecoverable test cases (either budget
/// can be zeroed by the caller through the arguments).
inline std::vector<exp::Scenario> make_scenarios(
    const exp::TopologyContext& ctx, const exp::BenchConfig& cfg,
    std::size_t recoverable, std::size_t irrecoverable) {
  exp::CaseBudget budget;
  budget.recoverable = recoverable;
  budget.irrecoverable = irrecoverable;
  // Per-topology seed: deterministic but distinct across topologies.
  std::uint64_t seed = cfg.seed;
  for (char c : ctx.name) seed = seed * 131 + static_cast<unsigned char>(c);
  return exp::generate_scenarios(ctx, fail::ScenarioConfig{}, budget, seed,
                                 cfg.cut_rule);
}

/// Title on stdout (part of the comparable output); provenance -- which
/// embeds the volatile thread-count knob -- on stderr.
inline void print_header(const std::string& title,
                         const exp::BenchConfig& cfg) {
  std::cout << "==== " << title << " ====\n\n";
  std::cerr << "(" << cfg.describe() << ")\n";
}

}  // namespace rtr::bench
