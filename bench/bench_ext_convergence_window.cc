// Extension bench: quantifies the paper's motivation (Section I).
//
// For each topology and a sample of failure areas, compares the IGP
// convergence window (the time during which default routes stay broken;
// net/igp.h) against RTR's time-to-recovery (first phase duration plus
// one source-routed delivery), and translates the difference into
// packets saved per affected 10 Gb/s flow.
#include "bench_common.h"
#include "common/parallel.h"
#include "net/igp.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  exp::BenchConfig cfg = bench::config_from(argc, argv);
  cfg.cases = std::max<std::size_t>(1, cfg.cases / 10);
  bench::print_header(
      "Extension: IGP convergence window vs RTR time-to-recovery", cfg);

  stats::TextTable table({"Topology", "IGP conv (ms)", "RTR ready (ms)",
                          "Speedup", "Pkts saved/flow @10G"});
  const net::DelayModel delay;
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    // One scenario = one work unit; partials merged in index order so
    // the printed numbers match the serial run for any --threads.
    struct Partial {
      double conv_ms = 0.0;
      std::vector<double> ready_ms;
    };
    std::vector<Partial> partials(scenarios.size());
    common::parallel_for(
        scenarios.size(), cfg.threads, [&](std::size_t i) {
          const exp::Scenario& sc = scenarios[i];
          Partial& p = partials[i];
          p.conv_ms = net::igp_convergence(ctx.g, sc.failure).convergence_ms;
          core::RtrRecovery rtr(ctx.g, ctx.crossings, ctx.rt, sc.failure);
          for (const exp::TestCase& tc : sc.recoverable) {
            const core::RecoveryResult r =
                rtr.recover(tc.initiator, tc.dest);
            if (!r.recovered()) continue;
            const core::Phase1Result& p1 = rtr.phase1_for(tc.initiator);
            p.ready_ms.push_back(
                delay.duration_ms(p1.hops() + r.delivered_hops));
          }
        });
    double conv_sum = 0.0;
    std::size_t conv_n = 0;
    std::vector<double> ready_ms;
    for (const Partial& p : partials) {
      conv_sum += p.conv_ms;
      ++conv_n;
      ready_ms.insert(ready_ms.end(), p.ready_ms.begin(),
                      p.ready_ms.end());
    }
    if (conv_n == 0 || ready_ms.empty()) continue;
    const double conv = conv_sum / static_cast<double>(conv_n);
    const double ready = stats::Summary::of(ready_ms).mean;
    const double saved = net::packets_dropped(10e9, conv - ready);
    table.add_row({ctx.name, stats::fmt(conv, 0), stats::fmt(ready),
                   stats::fmt(conv / ready, 0) + "x",
                   stats::fmt(saved / 1e6, 2) + "M"});
  }
  table.print(std::cout);
  std::cout << "\nContext (Section I): a 10 Gb/s link down for 10 s "
               "drops ~12.5 million 1000-byte packets; RTR shrinks the "
               "unprotected window from the IGP's seconds to tens of "
               "milliseconds.\n";

  // --fault-* sweep: the same recoverable workload re-run as distributed
  // recovery sessions under the armed rtr::fault plan (see
  // EXPERIMENTS.md).  Printed only when faults are armed, so the
  // fault-free stdout stays byte-identical to builds without the layer.
  if (cfg.fault.any()) {
    std::cout << "\n==== Fault sweep: graceful degradation under "
                 "injected faults ====\n\n";
    stats::TextTable fault_table({"Topology", "Cases", "Recovered",
                                  "Unrecovered", "Dropped", "Attempts",
                                  "Reinit", "Mean recovery (ms)"});
    exp::RunOptions fopts = bench::run_options(cfg);
    fopts.run_fcp = false;
    fopts.run_mrc = false;
    for (const auto& ctx_ptr : bench::make_contexts(false)) {
      const exp::TopologyContext& ctx = *ctx_ptr;
      const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
      const exp::RecoverableResults r =
          exp::run_recoverable(ctx, scenarios, fopts);
      const double mean_ms =
          r.rtr_recovery_ms.empty()
              ? 0.0
              : stats::Summary::of(r.rtr_recovery_ms).mean;
      fault_table.add_row(
          {r.topo, std::to_string(r.cases),
           std::to_string(r.rtr_recovered),
           std::to_string(r.rtr_unrecovered),
           std::to_string(r.rtr_dropped),
           std::to_string(r.rtr_retry_attempts),
           std::to_string(r.rtr_reinitiations), stats::fmt(mean_ms)});
    }
    fault_table.print(std::cout);
    std::cout << "\nEvery injected fault replays bit-exactly from "
                 "--fault-seed; unrecovered cases exhausted the retry "
                 "cap gracefully (no assertion ever fires).\n";
  }
  return 0;
}
