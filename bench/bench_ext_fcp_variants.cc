// Extension: original FCP vs the source-routing FCP the paper compares
// against.  Section IV-A: "For FCP, we use the source routing version,
// which reduces the computational overhead of the original FCP."  This
// bench quantifies that reduction (and RTR's further advantage) on the
// recoverable workload.
#include "baselines/fcp.h"
#include "bench_common.h"
#include "common/parallel.h"
#include "core/rtr.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  exp::BenchConfig cfg = bench::config_from(argc, argv);
  cfg.cases = std::max<std::size_t>(1, cfg.cases / 4);
  bench::print_header(
      "Extension: SP calculations -- original FCP vs source-routing FCP "
      "vs RTR",
      cfg);

  stats::TextTable table({"Topology", "Avg FCP-orig", "Avg FCP-sr",
                          "Avg RTR", "Max FCP-orig", "Max FCP-sr"});
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    // One scenario = one work unit; per-scenario sample vectors are
    // concatenated in index order, matching the serial run exactly.
    struct Partial {
      std::vector<double> orig, sr;
    };
    std::vector<Partial> partials(scenarios.size());
    common::parallel_for(
        scenarios.size(), cfg.threads, [&](std::size_t i) {
          const exp::Scenario& sc = scenarios[i];
          Partial& p = partials[i];
          for (const exp::TestCase& tc : sc.recoverable) {
            p.orig.push_back(static_cast<double>(
                baseline::run_fcp_original(ctx.g, sc.failure, tc.initiator,
                                           tc.dest)
                    .sp_calculations));
            p.sr.push_back(static_cast<double>(
                baseline::run_fcp(ctx.g, sc.failure, tc.initiator, tc.dest)
                    .sp_calculations));
          }
        });
    std::vector<double> orig_calcs, sr_calcs;
    for (const Partial& p : partials) {
      orig_calcs.insert(orig_calcs.end(), p.orig.begin(), p.orig.end());
      sr_calcs.insert(sr_calcs.end(), p.sr.begin(), p.sr.end());
    }
    const stats::Summary so = stats::Summary::of(orig_calcs);
    const stats::Summary ss = stats::Summary::of(sr_calcs);
    table.add_row({ctx.name, stats::fmt(so.mean), stats::fmt(ss.mean),
                   "1.0", stats::fmt(so.max, 0), stats::fmt(ss.max, 0)});
  }
  table.print(std::cout);
  std::cout << "\nThe source-routing variant computes only where the "
               "packet meets an unrecorded failure; the original "
               "recomputes at every router on the walk.  RTR computes "
               "exactly once per destination.\n";
  return 0;
}
