// Regenerates Fig. 7: cumulative distribution of the duration of RTR's
// first phase over all (recoverable + irrecoverable) test cases, with
// the 1.8 ms per-hop delay model of Section IV-B.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 7: CDF of the duration of the first phase (ms)", cfg);

  const std::vector<double> grid = {10, 20,  30,  40,  50, 60,
                                    70, 80,  90,  100, 110};
  std::vector<std::string> header = {"Topology"};
  for (double g : grid) header.push_back("<=" + stats::fmt(g, 0) + "ms");
  header.push_back("max(ms)");
  stats::TextTable table(header);

  double global_max = 0.0;
  std::size_t over_110 = 0;
  std::size_t total = 0;
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios =
        bench::make_scenarios(ctx, cfg, cfg.cases, cfg.cases);
    // Fig. 7 pools recoverable and irrecoverable cases: "RTR has the
    // same first phase in both".
    const exp::RecoverableResults rec = exp::run_recoverable(
        ctx, scenarios, [&cfg] {
          exp::RunOptions o = bench::run_options(cfg);
          o.run_mrc = false;
          o.run_fcp = false;
          return o;
        }());
    exp::RunOptions irr_opts = bench::run_options(cfg);
    irr_opts.run_fcp = false;
    const exp::IrrecoverableResults irr =
        exp::run_irrecoverable(ctx, scenarios, irr_opts);

    std::vector<double> samples = rec.phase1_duration_ms;
    samples.insert(samples.end(), irr.phase1_duration_ms.begin(),
                   irr.phase1_duration_ms.end());
    const stats::Cdf cdf(std::move(samples));
    std::vector<std::string> row = {ctx.name};
    for (double g : grid) {
      row.push_back(stats::fmt_pct(cdf.fraction_at_or_below(g)));
    }
    row.push_back(stats::fmt(cdf.max()));
    table.add_row(std::move(row));
    global_max = std::max(global_max, cdf.max());
    total += cdf.size();
    over_110 += cdf.size() -
                static_cast<std::size_t>(cdf.fraction_at_or_below(110.0) *
                                         static_cast<double>(cdf.size()) +
                                         0.5);
  }
  table.print(std::cout);
  std::cout << "\nCases with first phase > 110 ms: " << over_110 << " of "
            << total << " (paper: none of 200,000)\n"
            << "Longest observed first phase: " << stats::fmt(global_max)
            << " ms\n"
            << "Paper reference: first phase < 75 ms in >90% of cases in "
               "every topology; AS7018 slowest (tree branches).\n";
  return 0;
}
