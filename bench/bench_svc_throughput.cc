// Closed-loop load generator for the rtr::svc planning server
// (ISSUE 7 tentpole): in-process transport, real wire codec.
//
// Three phases:
//   1. admission burst -- the queue is filled before the workers start,
//      so the rejection count is a pure function of (burst, capacity);
//   2. closed loop -- --clients client threads issue --requests
//      pre-encoded plan requests against the running server and check
//      every response;
//   3. deadline sweep -- one multi-flow request replayed under
//      decreasing deadlines, charting kOk -> kDeadlineExceeded.
//
// Everything on stdout is a pure function of (topologies, seed,
// --requests, --queue-cap): request counts, status/outcome tallies, an
// FNV-1a digest of all closed-loop response frames in submission
// order, and the deadline-sweep outcomes.  The CI svc-smoke job diffs
// stdout and the deterministic metrics document byte-for-byte across
// --threads 1/2/8.  QPS and client-side p50/p99 latency are wall clock:
// they go to stderr and the volatile timing block only.
#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "common/expect.h"
#include "obs/emit.h"
#include "stats/table.h"
#include "svc/server.h"
#include "svc/wire.h"

using namespace rtr;

namespace {

constexpr std::size_t kScenariosPerTopology = 4;
constexpr std::size_t kFlowsPerRequest = 6;
constexpr std::size_t kBurstExtra = 5;
/// Phase-3 deadlines in simulated ms (0 = none); spans "first phase-1
/// already too slow" up to "everything fits".
constexpr std::uint32_t kDeadlineSweep[] = {1, 4, 18, 90, 0};

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::uint8_t>& bytes) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Converts one generated scenario into the wire request an operations
/// plane would send: explicit failed-id lists plus the scenario's first
/// recoverable flows.
svc::PlanRequest to_plan_request(const std::string& topology,
                                 const exp::TopologyContext& ctx,
                                 const exp::Scenario& scenario) {
  svc::PlanRequest plan;
  plan.topology = topology;
  for (NodeId n = 0; n < ctx.g.node_count(); ++n) {
    if (scenario.failure.node_failed(n)) plan.failed_nodes.push_back(n);
  }
  for (LinkId l = 0; l < ctx.g.link_count(); ++l) {
    if (scenario.failure.link_failed(l)) plan.failed_links.push_back(l);
  }
  const std::size_t flows =
      std::min(kFlowsPerRequest, scenario.recoverable.size());
  for (std::size_t i = 0; i < flows; ++i) {
    plan.flows.push_back({scenario.recoverable[i].initiator,
                          scenario.recoverable[i].dest});
  }
  return plan;
}

std::vector<std::uint8_t> frame_of(std::uint64_t id,
                                   const svc::PlanRequest& plan,
                                   std::uint32_t deadline_ms) {
  svc::Request req;
  req.id = id;
  req.deadline_ms = deadline_ms;
  req.endpoint = "plan";
  req.body = svc::encode_plan_request(plan);
  return svc::encode_frame(svc::encode_request(req));
}

struct Percentiles {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

Percentiles percentiles(std::vector<std::uint64_t> latencies_ns) {
  Percentiles p;
  if (latencies_ns.empty()) return p;
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ns.size() - 1));
    return static_cast<double>(latencies_ns[i]) / 1000.0;
  };
  p.p50_us = at(0.5);
  p.p99_us = at(0.99);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  const exp::BenchConfig cfg = bench::consume_engine_flags(args);
  unsigned long long requests = 96;
  unsigned long long clients = 4;
  unsigned long long queue_cap = 8;
  for (std::size_t i = 1; i < args.size();) {
    std::string value;
    std::size_t consumed = 0;
    if (bench::detail::match_value_flag(args, i, "--requests", &value,
                                        &consumed)) {
      if (!bench::detail::parse_u64(value, &requests) || requests == 0) {
        bench::detail::bad_flag_value("--requests", value);
      }
      i += consumed;
    } else if (bench::detail::match_value_flag(args, i, "--clients", &value,
                                               &consumed)) {
      if (!bench::detail::parse_u64(value, &clients) || clients == 0) {
        bench::detail::bad_flag_value("--clients", value);
      }
      i += consumed;
    } else if (bench::detail::match_value_flag(args, i, "--queue-cap",
                                               &value, &consumed)) {
      if (!bench::detail::parse_u64(value, &queue_cap) || queue_cap == 0) {
        bench::detail::bad_flag_value("--queue-cap", value);
      }
      i += consumed;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--requests N] [--clients N] [--queue-cap N]"
                   " [--threads N] [--metrics-out FILE] [--ledger FILE]\n"
                << "unrecognised argument: " << args[i] << '\n';
      return 2;
    }
  }
  // Closed-loop clients never exceed the queue: each has at most one
  // request in flight, so phase-2 admission verdicts (and with them the
  // stable counters) cannot depend on drain timing.
  clients = std::min(clients, queue_cap);
  bench::print_header(
      "Service throughput: closed-loop load against the rtr::svc planner",
      cfg);

  svc::ServerOptions sopts;
  sopts.workers = cfg.threads;
  sopts.queue_capacity = static_cast<std::size_t>(queue_cap);
  sopts.ledger_path = cfg.ledger_path;
  svc::Server server(sopts);
  for (const graph::IspSpec& spec : graph::rocketfuel_specs()) {
    if (!spec.core) continue;
    server.add_topology(spec.name, graph::make_isp_topology(spec));
  }

  // Pre-encoded request pool: a few area-failure scenarios per resident
  // topology, flows drawn from each scenario's recoverable cases.
  std::vector<std::vector<std::uint8_t>> pool;
  stats::TextTable workload({"Topology", "Requests", "Flows"});
  for (const auto& [name, ctx] : server.topologies()) {
    const std::vector<exp::Scenario> scenarios =
        bench::make_scenarios(*ctx, cfg, kScenariosPerTopology, 0);
    std::size_t built = 0;
    std::size_t flows = 0;
    for (const exp::Scenario& s : scenarios) {
      if (s.recoverable.empty()) continue;
      if (built == kScenariosPerTopology) break;
      const svc::PlanRequest plan = to_plan_request(name, *ctx, s);
      pool.push_back(frame_of(pool.size() + 1, plan, 0));
      built += 1;
      flows += plan.flows.size();
    }
    workload.add_row({name, std::to_string(built), std::to_string(flows)});
  }
  workload.print(std::cout);
  RTR_EXPECT(!pool.empty());

  // ---- Phase 1: admission burst against the stopped server ----------
  // Admission is decided synchronously at submit; with no worker
  // draining, exactly capacity frames are admitted and the rest shed.
  const std::size_t burst = sopts.queue_capacity + kBurstExtra;
  std::vector<std::future<std::vector<std::uint8_t>>> burst_futures;
  for (std::size_t i = 0; i < burst; ++i) {
    burst_futures.push_back(server.submit(pool[i % pool.size()]));
  }
  server.start();
  std::size_t burst_ok = 0;
  std::size_t burst_rejected = 0;
  for (auto& fut : burst_futures) {
    const svc::Response r =
        svc::decode_response(svc::decode_frame(fut.get()));
    if (r.status == svc::Status::kRejected) {
      burst_rejected += 1;
    } else {
      burst_ok += 1;
    }
  }
  std::cout << "\nAdmission burst: " << burst << " submitted, queue cap "
            << sopts.queue_capacity << " -> " << burst_ok << " served, "
            << burst_rejected << " rejected\n";

  // ---- Phase 2: closed loop ------------------------------------------
  const std::size_t total = static_cast<std::size_t>(requests);
  std::vector<std::vector<std::uint8_t>> responses(total);
  std::vector<std::vector<std::uint64_t>> client_latency_ns(
      static_cast<std::size_t>(clients));
  obs::Histogram& latency_hist =
      obs::Registry::global().timer("rtr.bench.svc.client_latency_ns");
  double elapsed_s = 0.0;
  {
    // ScopedTimer is the sanctioned wall-clock probe: the loop duration
    // lands in a volatile series, never in stable output.
    const obs::ScopedTimer loop_timer(
        obs::Registry::global().timer("rtr.bench.svc.closed_loop_ns"));
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < total; i += clients) {
          const obs::ScopedTimer timer(latency_hist);
          responses[i] = server.call(pool[i % pool.size()]);
          client_latency_ns[c].push_back(timer.elapsed_ns());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    elapsed_s = static_cast<double>(loop_timer.elapsed_ns()) / 1e9;
  }

  // Deterministic closed-loop report: digest over response frames in
  // submission order, plus status/outcome tallies.
  std::uint64_t digest = 1469598103934665603ULL;
  std::size_t status_ok = 0;
  std::size_t outcome_tally[6] = {};
  for (const std::vector<std::uint8_t>& frame : responses) {
    digest = fnv1a(digest, frame);
    const svc::Response r =
        svc::decode_response(svc::decode_frame(frame));
    if (r.status == svc::Status::kOk) status_ok += 1;
    for (const svc::FlowResult& f :
         svc::decode_plan_response(r.body).results) {
      outcome_tally[static_cast<std::size_t>(f.outcome)] += 1;
    }
  }
  std::cout << "\nClosed loop: " << total << " requests over "
            << pool.size() << " distinct frames, " << status_ok
            << " ok\nResponse digest: " << hex64(digest) << "\n";
  stats::TextTable outcomes({"Flow outcome", "Count"});
  for (std::size_t o = 0; o < 6; ++o) {
    outcomes.add_row(
        {svc::to_string(static_cast<svc::FlowOutcome>(o)),
         std::to_string(outcome_tally[o])});
  }
  outcomes.print(std::cout);

  // Wall-clock results: stderr + volatile series only.
  std::vector<std::uint64_t> all_lat;
  for (const auto& v : client_latency_ns) {
    all_lat.insert(all_lat.end(), v.begin(), v.end());
  }
  const Percentiles pct = percentiles(std::move(all_lat));
  const double qps =
      elapsed_s > 0.0 ? static_cast<double>(total) / elapsed_s : 0.0;
  obs::Registry::global()
      .gauge("rtr.bench.svc.qps_x1000", obs::Stability::kVolatile)
      .record(static_cast<obs::Value>(qps * 1000.0));
  std::cerr << "(closed loop: " << qps << " qps, p50 " << pct.p50_us
            << " us, p99 " << pct.p99_us << " us, " << clients
            << " clients)\n";

  // Long-running-surface seam: snapshot the metrics mid-run; the atexit
  // flush will rewrite the same file whole at exit (satellite 4's
  // explicit-emitter contract).
  obs::Emitter::global().flush();

  // ---- Phase 3: deadline sweep ---------------------------------------
  stats::TextTable sweep(
      {"Deadline (sim ms)", "Status", "Flows done", "Sim elapsed us"});
  for (const std::uint32_t deadline_ms : kDeadlineSweep) {
    const svc::Request probe = [&] {
      svc::Request req = svc::decode_request(svc::decode_frame(pool[0]));
      req.deadline_ms = deadline_ms;
      return req;
    }();
    const svc::Response r = svc::decode_response(svc::decode_frame(
        server.call(svc::encode_frame(svc::encode_request(probe)))));
    const svc::PlanResponse plan = svc::decode_plan_response(r.body);
    sweep.add_row({deadline_ms == 0 ? "none" : std::to_string(deadline_ms),
                   svc::to_string(r.status),
                   std::to_string(plan.flows_done) + "/" +
                       std::to_string(plan.flows_total),
                   std::to_string(plan.sim_elapsed_us)});
  }
  std::cout << '\n';
  sweep.print(std::cout);

  server.stop();

  // ---- Phase 4 (--ledger only): restart + replay ---------------------
  // A second Server over the same topologies and journal models a
  // crashed-and-restarted process: its first start() replays every
  // journaled frame through the serve path, rebuilding the warm
  // BaseTreeStore caches, and the pinned request must then come back
  // byte-identical to the live run's response (the svc determinism
  // contract, now surviving a restart).
  if (!cfg.ledger_path.empty()) {
    svc::Server revived(sopts);
    for (const graph::IspSpec& spec : graph::rocketfuel_specs()) {
      if (!spec.core) continue;
      revived.add_topology(spec.name, graph::make_isp_topology(spec));
    }
    revived.start();
    const std::vector<std::uint8_t> pinned = revived.call(pool[0]);
    RTR_EXPECT(pinned == responses[0]);
    std::cout << "\nLedger replay: restarted server rebuilt its caches from "
                 "the journal; pinned response digest "
              << hex64(fnv1a(1469598103934665603ULL, pinned))
              << " (byte-identical to the live run)\n";
    revived.stop();
  }

  std::cout << "\nAll rows above are pure functions of the workload knobs; "
               "QPS and latency are reported on stderr and in the metrics "
               "timing block.\n";
  return 0;
}
