// Ablation A1: what Constraints 1 and 2 (Section III-C) buy.
//
// Runs the recoverable workload with each constraint disabled and with
// the sweep orientation flipped, reporting phase-1 termination failures
// (Theorem 1 violations), traversal length and recovery rate.  With
// both constraints on, aborts must be zero.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  exp::BenchConfig cfg = bench::config_from(argc, argv);
  // The ablation is quadratic in interest, not in cases; a quarter of
  // the full workload keeps it quick at default settings.
  cfg.cases = std::max<std::size_t>(1, cfg.cases / 4);
  bench::print_header(
      "Ablation: phase-1 constraints and sweep orientation", cfg);

  struct Variant {
    const char* name;
    core::Phase1Options opts;
  };
  const std::vector<Variant> variants = {
      {"both constraints (RTR)", {}},
      {"no constraint 1", {false, true, false, 8}},
      {"no constraint 2", {true, false, false, 8}},
      {"no constraints", {false, false, false, 8}},
      {"clockwise sweep", {true, true, true, 8}},
  };

  stats::TextTable table({"Variant", "Topology", "Aborted", "Rec%",
                          "MeanP1Hops", "MaxP1Hops"});
  for (const char* topo : {"AS209", "AS3549", "AS7018"}) {
    const exp::TopologyContext ctx =
        exp::make_context(graph::spec_by_name(topo));
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    for (const Variant& v : variants) {
      exp::RunOptions opts = bench::run_options(cfg);
      opts.run_mrc = false;
      opts.run_fcp = false;
      opts.rtr.phase1 = v.opts;
      const exp::RecoverableResults r =
          exp::run_recoverable(ctx, scenarios, opts);
      const stats::Summary p1 = stats::Summary::of(r.phase1_duration_ms);
      const double per_hop = opts.delay.per_hop_ms();
      table.add_row({v.name, ctx.name,
                     std::to_string(r.rtr_phase1_aborted),
                     stats::fmt(100.0 * r.rtr_recovered /
                                static_cast<double>(r.cases)),
                     stats::fmt(p1.mean / per_hop),
                     stats::fmt(p1.max / per_hop, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpectation: zero aborts with both constraints on "
               "(Theorem 1); disabling them permits non-enclosing or "
               "wedged traversals on general graphs.\n";
  return 0;
}
