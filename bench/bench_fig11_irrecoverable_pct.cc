// Regenerates Fig. 11: the percentage of failed routing paths that are
// irrecoverable as the failure radius grows from 20 to 300 in steps of
// 20 (1,000 random areas per radius), over all ten topologies.
//
// Printed under both link-cut rules: the endpoint rule reproduces the
// paper's ">20% already at radius 20" level, the geometric rule
// reproduces the rising shape of the curves (see DESIGN.md on why the
// paper's own data cannot satisfy both under one rule).
#include "bench_common.h"
#include "stats/table.h"

using namespace rtr;

namespace {

void sweep(const exp::BenchConfig& cfg, fail::LinkCutRule rule,
           const char* label) {
  std::vector<double> radii;
  for (double r = 20.0; r <= 300.0; r += 20.0) radii.push_back(r);
  std::vector<std::string> header = {"Topology"};
  for (double r : radii) {
    // Built via append rather than `"r" + fmt(...)`: the rvalue
    // operator+ overload trips GCC 12's -Wrestrict false positive
    // (PR105329), which -Werror would turn fatal.
    std::string col = "r";
    col += stats::fmt(r, 0);
    header.push_back(std::move(col));
  }
  stats::TextTable table(header);

  for (const auto& ctx_ptr : bench::make_contexts(true)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto pts = exp::radius_sweep(ctx, radii, cfg.fig11_areas,
                                       cfg.seed, 2000.0, rule);
    std::vector<std::string> row = {ctx.name};
    for (const exp::RadiusPoint& p : pts) {
      row.push_back(stats::fmt(p.pct_irrecoverable()));
    }
    table.add_row(std::move(row));
  }
  std::cout << "-- link-cut rule: " << label
            << " --  (% of failed routing paths that are irrecoverable)\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 11: percentage of irrecoverable failed routing paths vs "
      "failure radius",
      cfg);
  sweep(cfg, fail::LinkCutRule::kEndpointsOnly, "endpoint (paper's data)");
  sweep(cfg, fail::LinkCutRule::kGeometric, "geometric (stated model)");
  std::cout << "Paper reference: >20% irrecoverable at radius 20 and >45% "
               "at radius 300 in nine topologies.\n";
  return 0;
}
