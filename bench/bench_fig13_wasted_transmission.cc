// Regenerates Fig. 13: cumulative distribution of the wasted
// transmission (bytes forwarded before the packet is discarded) on
// irrecoverable test cases.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 13: CDF of the wasted transmission in irrecoverable test "
      "cases (bytes)",
      cfg);

  const std::vector<double> grid = {0,    1000,  2000,  4000,  8000,
                                    16000, 32000, 48000, 64000};
  std::vector<std::string> header = {"Series"};
  for (double g : grid) header.push_back("<=" + stats::fmt(g, 0));
  header.push_back("max");
  stats::TextTable table(header);

  for (const auto& ctx_ptr : bench::make_contexts(true)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, 0, cfg.cases);
    const exp::IrrecoverableResults r =
        exp::run_irrecoverable(ctx, scenarios, bench::run_options(cfg));
    for (const auto& [name, samples] :
         {std::pair<std::string, const std::vector<double>*>{
              "RTR (" + ctx.name + ")", &r.rtr_wasted_trans},
          {"FCP (" + ctx.name + ")", &r.fcp_wasted_trans}}) {
      const stats::Cdf cdf(*samples);
      std::vector<std::string> row = {name};
      for (double g : grid) {
        row.push_back(stats::fmt_pct(cdf.fraction_at_or_below(g)));
      }
      row.push_back(stats::fmt(cdf.max(), 0));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: RTR outperforms FCP in every topology; "
               "overall averages 932 vs 3823 bytes (Table IV).\n";
  return 0;
}
