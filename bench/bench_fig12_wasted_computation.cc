// Regenerates Fig. 12: cumulative distribution of the wasted
// computation (shortest-path calculations) on irrecoverable test cases.
// RTR wastes at most one calculation; FCP keeps recomputing until the
// carried failure list proves the destination unreachable.
#include "bench_common.h"
#include "stats/cdf.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 12: CDF of the wasted computation in irrecoverable test "
      "cases",
      cfg);

  const std::vector<double> grid = {1, 3, 6, 9, 12, 18, 24, 30, 42};
  std::vector<std::string> header = {"Series"};
  for (double g : grid) header.push_back("<=" + stats::fmt(g, 0));
  header.push_back("max");
  stats::TextTable table(header);

  for (const auto& ctx_ptr : bench::make_contexts(true)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, 0, cfg.cases);
    const exp::IrrecoverableResults r =
        exp::run_irrecoverable(ctx, scenarios, bench::run_options(cfg));
    for (const auto& [name, samples] :
         {std::pair<std::string, const std::vector<double>*>{
              "RTR (" + ctx.name + ")", &r.rtr_wasted_comp},
          {"FCP (" + ctx.name + ")", &r.fcp_wasted_comp}}) {
      const stats::Cdf cdf(*samples);
      std::vector<std::string> row = {name};
      for (double g : grid) {
        row.push_back(stats::fmt_pct(cdf.fraction_at_or_below(g)));
      }
      row.push_back(stats::fmt(cdf.max(), 0));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: RTR's wasted computation is 1; FCP "
               "averages 5.9 with maxima up to 42 (Table IV).\n";
  return 0;
}
