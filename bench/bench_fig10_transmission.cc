// Regenerates Fig. 10: average transmission overhead (bytes of recovery
// state in the packet header) over the first second after recovery
// starts, averaged across the recoverable test cases of each topology.
// RTR starts high while phase-1 packets carry failed_link/cross_link
// and converges to its small source-route once every test case enters
// phase 2 (~100 ms); FCP stays at its failed-links-plus-route level.
#include "bench_common.h"
#include "stats/table.h"

using namespace rtr;

int main(int argc, char** argv) {
  const exp::BenchConfig cfg = bench::config_from(argc, argv);
  bench::print_header(
      "Fig. 10: average transmission overhead (bytes) over time", cfg);

  const std::vector<std::size_t> grid_ms = {0,  10, 25,  50,  75, 100,
                                            150, 250, 500, 999};
  std::vector<std::string> header = {"Series"};
  for (std::size_t t : grid_ms) {
    header.push_back(std::to_string(t) + "ms");
  }
  stats::TextTable table(header);

  exp::RunOptions opts = bench::run_options(cfg);
  opts.run_mrc = false;
  for (const auto& ctx_ptr : bench::make_contexts(false)) {
    const exp::TopologyContext& ctx = *ctx_ptr;
    const auto scenarios = bench::make_scenarios(ctx, cfg, cfg.cases, 0);
    const exp::RecoverableResults r =
        exp::run_recoverable(ctx, scenarios, opts);
    for (const auto& [name, series] :
         {std::pair<std::string, const std::vector<double>*>{
              "RTR (" + ctx.name + ")", &r.rtr_bytes_timeline},
          {"FCP (" + ctx.name + ")", &r.fcp_bytes_timeline}}) {
      std::vector<std::string> row = {name};
      for (std::size_t t : grid_ms) {
        row.push_back(stats::fmt((*series)[t]));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: RTR's overhead is highest during the "
               "first phase, decreases as test cases enter phase 2, and "
               "converges after ~100 ms to a fixed value smaller than "
               "FCP's in every topology.\n";
  return 0;
}
