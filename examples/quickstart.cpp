// Quickstart: build a topology, break it with a circular disaster, and
// recover a flow with RTR.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the whole public API surface once: graph construction,
// routing tables, failure application, phase-1 collection, phase-2
// source routing, and the baselines for comparison.
#include <iostream>

#include "baselines/fcp.h"
#include "baselines/mrc.h"
#include "core/rtr.h"
#include "failure/failure_set.h"
#include "graph/crossings.h"
#include "graph/gen/isp_gen.h"
#include "spf/routing_table.h"
#include "spf/shortest_path.h"

using namespace rtr;

namespace {

void print_path(const graph::Graph& g, const spf::Path& p) {
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    if (i) std::cout << " -> ";
    std::cout << "v" << p.nodes[i];
  }
  std::cout << "  (" << p.hops() << " hops)";
  (void)g;
}

}  // namespace

int main() {
  // 1. A surrogate ISP topology (Table II sizes; deterministic seed).
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS209"));
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  std::cout << "Topology AS209: " << g.num_nodes() << " routers, "
            << g.num_links() << " links, "
            << crossings.num_crossing_pairs() << " crossing link pairs\n";

  // 2. A large-scale failure: a disaster circle in the middle of the
  //    plane destroys the routers inside it.
  const fail::CircleArea disaster({1000.0, 1000.0}, 260.0);
  const fail::FailureSet failure(g, disaster,
                                 fail::LinkCutRule::kEndpointsOnly);
  std::cout << "Disaster " << disaster.describe() << " destroys "
            << failure.num_failed_nodes() << " routers and "
            << failure.num_failed_links() << " links\n\n";

  // 3. Find a flow whose default routing path broke, and the router
  //    that detects it (the recovery initiator).  Prefer a case that
  //    RTR recovers (a small fraction is dropped when phase 1 misses a
  //    failure; the benches quantify that).
  core::RtrRecovery rtr(g, crossings, rt, failure);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (failure.node_failed(s)) continue;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (t == s || failure.node_failed(t)) continue;
      // Walk the default path to the first failure.
      NodeId u = s;
      NodeId initiator = kNoNode;
      while (u != t) {
        const graph::Adjacency a{rt.next_hop(u, t), rt.next_link(u, t)};
        if (failure.neighbor_unreachable(a)) {
          initiator = u;
          break;
        }
        u = a.neighbor;
      }
      if (initiator == kNoNode) continue;
      if (!failure.has_live_neighbor(g, initiator)) continue;

      // 4. RTR: collect failure information around the area, then
      //    source-route along a new shortest path.
      const core::RecoveryResult r = rtr.recover(initiator, t);
      if (!r.recovered()) continue;

      std::cout << "Flow v" << s << " -> v" << t
                << " is disconnected; v" << initiator
                << " becomes the recovery initiator.\n";
      const core::Phase1Result& p1 = rtr.phase1_for(initiator);
      std::cout << "  phase 1: " << p1.hops() << " hops around the "
                << "failure area, collected "
                << p1.header.failed_links.size() << " failed links ("
                << p1.header.recovery_bytes() << " header bytes)\n";
      std::cout << "  phase 2: " << core::to_string(r.outcome);
      if (r.recovered()) {
        std::cout << " via ";
        print_path(g, r.computed_path);
      }
      std::cout << "\n";

      // 5. The baselines on the same case.
      const baseline::FcpResult fcp =
          baseline::run_fcp(g, failure, initiator, t);
      std::cout << "  FCP: " << (fcp.delivered ? "delivered" : "dropped")
                << " after " << fcp.hops << " hops and "
                << fcp.sp_calculations << " shortest-path calculations\n";
      const baseline::Mrc mrc(g, rt);
      const baseline::Mrc::Result m = mrc.forward(failure, initiator, t);
      std::cout << "  MRC: " << (m.delivered ? "delivered" : "dropped")
                << " after " << m.hops << " hops ("
                << m.config_switches << " configuration switch)\n";
      return 0;
    }
  }
  std::cout << "The disaster broke no routing path; move the circle.\n";
  return 0;
}
