// An event-driven disaster scenario on the AS7018 surrogate.
//
// Two earthquakes strike twelve seconds apart (Section III-E: multiple
// failure areas).  A monitored flow keeps sending packets; the
// discrete-event simulator replays, with the 1.8 ms per-hop delay model
// of Section IV-B, how traffic is disrupted and how RTR's two phases
// restore delivery -- including the second recovery leg after the
// second quake, carrying the first quake's failure information in the
// packet header.
#include <iomanip>
#include <iostream>

#include "core/rtr.h"
#include "failure/failure_set.h"
#include "graph/gen/isp_gen.h"
#include "graph/properties.h"
#include "net/delay.h"
#include "net/igp.h"
#include "net/sim.h"
#include "spf/routing_table.h"

using namespace rtr;

namespace {

struct Flow {
  NodeId src;
  NodeId dst;
};

void log_at(net::Simulator& sim, const std::string& msg) {
  std::cout << "[t=" << std::fixed << std::setprecision(1) << std::setw(8)
            << sim.now() << " ms] " << msg << "\n";
}

}  // namespace

int main() {
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS7018"));
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const net::DelayModel delay;

  // Ground truth evolves over time; both quakes are staged up front.
  const fail::CircleArea quake1({700.0, 900.0}, 240.0);
  const fail::CircleArea quake2({1250.0, 1100.0}, 200.0);
  fail::FailureSet failure(g);

  // Pick a monitored flow that quake1 will disrupt.
  fail::FailureSet preview(g, quake1, fail::LinkCutRule::kEndpointsOnly);
  Flow flow{kNoNode, kNoNode};
  for (NodeId s = 0; s < g.num_nodes() && flow.src == kNoNode; ++s) {
    if (preview.node_failed(s)) continue;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (t == s || preview.node_failed(t)) continue;
      const spf::Path p = rt.route(s, t);
      bool broken = false;
      for (LinkId l : p.links) broken |= preview.link_failed(l);
      if (broken && graph::reachable(g, s, t, preview.masks())) {
        flow = {s, t};
        break;
      }
    }
  }
  if (flow.src == kNoNode) {
    std::cout << "No disrupted-but-recoverable flow found.\n";
    return 0;
  }

  net::Simulator sim;
  std::cout << "AS7018 surrogate: " << g.num_nodes() << " routers, "
            << g.num_links() << " links\n"
            << "Monitored flow: v" << flow.src << " -> v" << flow.dst
            << " (" << rt.route(flow.src, flow.dst).hops()
            << " hops before the disaster)\n\n";

  double first_phase1_ms = -1.0;  // first observed collection duration

  // One probe packet per second for 30 s.
  for (int s = 0; s < 30; ++s) {
    sim.at(1000.0 * s, [&, s] {
      // Walk the default path until delivery or the first failure.
      NodeId u = flow.src;
      std::size_t hops = 0;
      while (u != flow.dst) {
        const graph::Adjacency a{rt.next_hop(u, flow.dst),
                                 rt.next_link(u, flow.dst)};
        if (failure.neighbor_unreachable(a)) break;
        u = a.neighbor;
        ++hops;
      }
      if (u == flow.dst) {
        log_at(sim, "packet " + std::to_string(s) + " delivered over the "
                        "default path in " +
                        std::to_string(hops) + " hops (" +
                        std::to_string(delay.duration_ms(hops)) + " ms)");
        return;
      }
      // Recovery at the detecting router.
      if (!failure.has_live_neighbor(g, u)) {
        log_at(sim, "packet " + std::to_string(s) +
                        " LOST: initiator v" + std::to_string(u) +
                        " is completely cut off");
        return;
      }
      core::RtrRecovery rtr(g, crossings, rt, failure);
      const auto mr = rtr.recover_multi(u, flow.dst);
      const core::Phase1Result& p1 = rtr.phase1_for(u);
      if (first_phase1_ms < 0.0) {
        first_phase1_ms = delay.duration_ms(p1.hops());
      }
      std::string note = "packet " + std::to_string(s) +
                         " hit the failure at v" + std::to_string(u) +
                         "; phase 1 = " + std::to_string(p1.hops()) +
                         " hops (" +
                         std::to_string(delay.duration_ms(p1.hops())) +
                         " ms), ";
      if (mr.outcome == core::Outcome::kRecovered) {
        note += "recovered over " +
                std::to_string(mr.total_delivered_hops) + " hops in " +
                std::to_string(mr.legs.size()) + " leg(s)";
      } else {
        note += std::string("dropped (") + core::to_string(mr.outcome) +
                ")";
      }
      log_at(sim, note);
    });
  }

  sim.at(2500.0, [&] {
    failure.add(g, quake1, fail::LinkCutRule::kEndpointsOnly);
    log_at(sim, ">>> earthquake 1: " + quake1.describe() + " -- " +
                    std::to_string(failure.num_failed_nodes()) +
                    " routers down");
  });
  sim.at(14500.0, [&] {
    const std::size_t before = failure.num_failed_nodes();
    failure.add(g, quake2, fail::LinkCutRule::kEndpointsOnly);
    log_at(sim, ">>> earthquake 2: " + quake2.describe() + " -- " +
                    std::to_string(failure.num_failed_nodes() - before) +
                    " more routers down");
  });

  sim.run();
  std::cout << "\nSimulation executed " << sim.executed()
            << " events over " << sim.now() / 1000.0 << " s\n";

  // The payoff in the paper's own terms: how long the IGP would need
  // to repair the tables after quake 1, and what that window costs a
  // 10 Gb/s flow without a recovery scheme.
  const fail::FailureSet after_q1(g, quake1,
                                  fail::LinkCutRule::kEndpointsOnly);
  const net::ConvergenceTimeline conv = net::igp_convergence(g, after_q1);
  std::cout << "\nIGP convergence after earthquake 1 would take "
            << std::setprecision(0) << conv.convergence_ms
            << " ms; RTR restored the monitored flow after "
            << std::setprecision(1) << first_phase1_ms
            << " ms of failure collection.\nAt 10 Gb/s, the bare "
               "convergence window drops ~"
            << std::setprecision(2)
            << net::packets_dropped(10e9, conv.convergence_ms) / 1e6
            << " million packets per affected flow (Section I's "
               "arithmetic).\n";
  return 0;
}
