// Arbitrary-shape failure areas (Section II-A: "we do not make any
// assumption on the shape and location of the failure area").
//
// Models a hurricane corridor as a simple polygon sweeping across the
// AS3320 surrogate, plus a separate circular flood, composed with
// UnionArea.  RTR recovers flows around the combined area; the example
// contrasts the two link-cut rules on the same disaster.
#include <iostream>

#include "core/rtr.h"
#include "failure/area.h"
#include "failure/failure_set.h"
#include "graph/gen/isp_gen.h"
#include "graph/properties.h"
#include "spf/routing_table.h"

using namespace rtr;

namespace {

std::unique_ptr<fail::UnionArea> make_disaster() {
  // A slanted corridor (hurricane track) across the middle of the
  // plane, 2000 long and ~300 wide.
  geom::Polygon corridor({{150, 500},
                          {1850, 1200},
                          {1900, 1500},
                          {1750, 1520},
                          {100, 800}});
  std::vector<std::unique_ptr<fail::FailureArea>> parts;
  parts.push_back(
      std::make_unique<fail::PolygonArea>(std::move(corridor)));
  parts.push_back(
      std::make_unique<fail::CircleArea>(geom::Point{400, 1600}, 180.0));
  return std::make_unique<fail::UnionArea>(std::move(parts));
}

void run(const graph::Graph& g, const graph::CrossingIndex& crossings,
         const spf::RoutingTable& rt, const fail::FailureArea& area,
         fail::LinkCutRule rule, const char* label) {
  const fail::FailureSet failure(g, area, rule);
  std::cout << "--- link-cut rule: " << label << " ---\n";
  std::cout << "Destroyed: " << failure.num_failed_nodes()
            << " routers, " << failure.num_failed_links() << " links\n";

  core::RtrRecovery rtr(g, crossings, rt, failure);
  const graph::Components comp = graph::components(g, failure.masks());
  std::size_t reachable_cases = 0;
  std::size_t unreachable_cases = 0;
  std::size_t recovered = 0;
  std::size_t optimal = 0;
  std::size_t identified = 0;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (failure.node_failed(s)) continue;
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (t == s) continue;
      NodeId u = s;
      NodeId initiator = kNoNode;
      while (u != t) {
        const graph::Adjacency a{rt.next_hop(u, t), rt.next_link(u, t)};
        if (failure.neighbor_unreachable(a)) {
          initiator = u;
          break;
        }
        u = a.neighbor;
      }
      if (initiator == kNoNode) continue;
      if (!failure.has_live_neighbor(g, initiator)) continue;
      const bool dest_reachable =
          !failure.node_failed(t) && comp.id[initiator] == comp.id[t];
      const core::RecoveryResult r = rtr.recover(initiator, t);
      if (dest_reachable) {
        ++reachable_cases;
        if (r.recovered()) {
          ++recovered;
          const spf::SptResult truth =
              spf::bfs_from(g, initiator, failure.masks());
          if (static_cast<double>(r.computed_path.hops()) ==
              truth.dist[t]) {
            ++optimal;
          }
        }
      } else {
        ++unreachable_cases;
        if (r.outcome == core::Outcome::kDeclaredUnreachable) {
          ++identified;
        }
      }
    }
  }
  std::cout << "Broken pairs with reachable destination:   "
            << reachable_cases << "\n"
            << "  recovered: " << recovered << " (all optimal: "
            << (optimal == recovered ? "yes" : "NO") << ")\n"
            << "Broken pairs with unreachable destination: "
            << unreachable_cases << "\n"
            << "  identified as unreachable at the initiator: "
            << identified << "\n\n";
}

}  // namespace

int main() {
  const graph::Graph g =
      graph::make_isp_topology(graph::spec_by_name("AS3320"));
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  const auto disaster = make_disaster();
  std::cout << "Disaster: " << disaster->describe() << "\n\n";
  run(g, crossings, rt, *disaster, fail::LinkCutRule::kEndpointsOnly,
      "endpoint");
  run(g, crossings, rt, *disaster, fail::LinkCutRule::kGeometric,
      "geometric");
  return 0;
}
