// The paper's worked example, end to end (Figures 1, 2, 6 and Table I).
//
// Rebuilds the 18-router network of Fig. 1, applies the failure area
// that destroys v10 and cuts e6,11 / e4,11, and replays RTR's first
// phase hop by hop, printing the failed_link and cross_link header
// fields after every hop -- the output mirrors Table I of the paper.
// It then prints the phase-2 recovery path and contrasts the planar
// variant of Fig. 2.
#include <iostream>

#include "core/rtr.h"
#include "failure/failure_set.h"
#include "graph/paper_topology.h"
#include "spf/routing_table.h"
#include "viz/svg_export.h"

using namespace rtr;

namespace {

// Labels are built via append rather than `"v" + std::to_string(...)`:
// the rvalue operator+ overload trips GCC 12's -Wrestrict false
// positive (PR105329), which -Werror would turn fatal.
std::string paper_name(const graph::Graph& g, NodeId n) {
  (void)g;
  std::string name = "v";
  name += std::to_string(n + 1);
  return name;
}

std::string paper_link(const graph::Graph& g, LinkId l) {
  const graph::Link& e = g.link(l);
  std::string name = "e";
  name += std::to_string(e.u + 1);
  name += ',';
  name += std::to_string(e.v + 1);
  return name;
}

void replay(const graph::Graph& g, const char* title,
            const char* svg_path) {
  const graph::CrossingIndex crossings(g);
  const spf::RoutingTable rt(g);
  // The worked example uses the stated geometric model: the circle
  // cuts e6,11 although both v6 and v11 survive.
  const fail::FailureSet failure(
      g, fail::CircleArea(graph::fig1_failure_area()),
      fail::LinkCutRule::kGeometric);

  const NodeId v6 = graph::paper_node(6);
  const NodeId v7 = graph::paper_node(7);
  const NodeId v17 = graph::paper_node(17);

  std::cout << "=== " << title << " ===\n";
  std::cout << "Default routing path v7 -> v17: ";
  const spf::Path def = rt.route(v7, v17);
  for (std::size_t i = 0; i < def.nodes.size(); ++i) {
    std::cout << (i ? " -> " : "") << paper_name(g, def.nodes[i]);
  }
  std::cout << "\nFailed elements: " << failure.num_failed_nodes()
            << " router (v10), " << failure.num_failed_links()
            << " links\n\n";

  core::RtrRecovery rtr(g, crossings, rt, failure);
  const core::RecoveryResult r = rtr.recover(v6, v17);
  const core::Phase1Result& p1 = rtr.phase1_for(v6);

  // Replay the header evolution (Table I): failed_count_per_hop and
  // cross_count_per_hop give the prefix of each insertion-ordered list
  // that the packet carried on each hop.
  std::cout << "Phase 1 (Table I): hop-by-hop header contents\n";
  std::cout << "hop  at    failed_link                                 "
               "cross_link\n";
  for (std::size_t hop = 0; hop <= p1.hops(); ++hop) {
    const NodeId at = p1.visits[hop];
    const std::size_t fi =
        hop < p1.hops() ? p1.failed_count_per_hop[hop]
                        : p1.header.failed_links.size();
    const std::size_t ci = hop < p1.hops()
                               ? p1.cross_count_per_hop[hop]
                               : p1.header.cross_links.size();
    std::cout << (hop < 10 ? " " : "") << hop << "   "
              << paper_name(g, at) << (at + 1 < 10 ? " " : "") << "   ";
    std::string fl;
    for (std::size_t k = 0; k < fi; ++k) {
      fl += (k ? ", " : "") + paper_link(g, p1.header.failed_links[k]);
    }
    fl.resize(44, ' ');
    std::cout << fl << "  ";
    for (std::size_t k = 0; k < ci; ++k) {
      std::cout << (k ? ", " : "")
                << paper_link(g, p1.header.cross_links[k]);
    }
    std::cout << "\n";
  }

  std::cout << "\nPhase 1 took " << p1.hops()
            << " hops; final header carries "
            << p1.header.recovery_bytes() << " bytes ("
            << p1.header.failed_links.size() << " failed links, "
            << p1.header.cross_links.size() << " cross links)\n";
  std::cout << "Phase 2: " << core::to_string(r.outcome)
            << "; recovery path ";
  for (std::size_t i = 0; i < r.computed_path.nodes.size(); ++i) {
    std::cout << (i ? " -> " : "")
              << paper_name(g, r.computed_path.nodes[i]);
  }
  std::cout << " (" << r.computed_path.hops() << " hops, source route "
            << r.source_route_bytes << " bytes)\n";

  // Render the scenario (topology, failure area, traversal, recovery
  // path) as an SVG figure mirroring Fig. 6 / Fig. 2.
  viz::SvgExporter svg(g);
  svg.add_failure(failure);
  svg.add_circle(graph::fig1_failure_area(), "#e8a13a", 0.25);
  svg.add_walk(p1.visits, "#2f855a");
  svg.add_path(r.computed_path.nodes, "#6b46c1");
  svg.highlight_node(v6, "#6b46c1");
  svg.save(svg_path);
  std::cout << "Figure written to " << svg_path << "\n\n";
}

}  // namespace

int main() {
  replay(graph::fig1_graph(), "General graph (Fig. 6 / Table I)",
         "walkthrough_general.svg");
  replay(graph::fig1_planar_graph(), "Planar variant (Fig. 2)",
         "walkthrough_planar.svg");
  return 0;
}
